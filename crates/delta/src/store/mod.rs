//! Content-addressed storage backends: where plans meet bytes.
//!
//! The solvers in `dsv_core` decide *which* deltas to store; this module is
//! the layer that actually stores them. Every stored object — a full
//! version payload ([`ObjectKind::Chunk`]) or an encoded delta
//! ([`ObjectKind::Delta`]) — is addressed by the hash of its bytes, so
//! identical content written by different plans is stored once and
//! reference-counted.
//!
//! Two backends implement the [`Store`] trait:
//!
//! * [`MemStore`] — the in-memory corpus of earlier PRs behind the trait:
//!   objects live in a map, nothing touches disk. Used by tests and by
//!   callers that only want measured-cost verification.
//! * [`PackStore`] — the persistent backend: small objects are appended to
//!   a single pack file with a fixed-width, sorted (mmap-friendly) index;
//!   large objects become hash-keyed loose files under `objects/`.
//!   Reference counts survive reopen, and [`Store::gc`] compacts the pack,
//!   dropping every object whose count reached zero.
//!
//! The byte formats themselves (version payloads, applyable deltas with the
//! paper's exact cost model) live in [`codec`]; the bridge from synthetic
//! corpora to payload/delta bytes is [`source`].
//!
//! All failures are surfaced as the typed [`StoreError`] — notably
//! [`StoreError::Corrupt`] whenever bytes read back do not hash to the id
//! they were stored under.

pub mod codec;
pub mod fault;
pub mod pack;
pub mod source;

pub use fault::{FaultOp, FaultPlan, FaultStats, FaultStore};
pub use pack::{CrashPoint, Durability, PackOptions, PackStore};
pub use source::{CorpusContent, VersionSource};

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

/// The content address of a stored object: a 128-bit non-cryptographic
/// hash of `kind byte || payload bytes`.
///
/// Two independently seeded 64-bit FNV-1a lanes with a final avalanche —
/// not collision-resistant against adversaries, but with the corpus sizes
/// of this system (thousands of objects) accidental collisions are
/// negligible, and the hash doubles as the integrity check on every read.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64, pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId({self})")
    }
}

/// What a stored object is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjectKind {
    /// A full version payload (the content-addressed "chunk" of a
    /// materialized version).
    Chunk,
    /// An encoded delta transforming one version payload into another.
    Delta,
}

impl ObjectKind {
    /// Stable one-byte tag used in hashing and on-disk records.
    pub fn tag(self) -> u8 {
        match self {
            ObjectKind::Chunk => 1,
            ObjectKind::Delta => 2,
        }
    }

    /// Inverse of [`ObjectKind::tag`].
    pub fn from_tag(tag: u8) -> Option<ObjectKind> {
        match tag {
            1 => Some(ObjectKind::Chunk),
            2 => Some(ObjectKind::Delta),
            _ => None,
        }
    }
}

#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Incremental form of [`hash_object`]: feed the object bytes in any
/// number of `update` calls and `finish` yields the identical
/// [`ObjectId`]. This is what lets verification hash *streamed* content —
/// e.g. a decoded payload's canonical encoding emitted piecewise — without
/// ever materializing the full byte string.
#[derive(Clone, Debug)]
pub struct ObjectHasher {
    a: u64,
    b: u64,
    len: u64,
}

impl ObjectHasher {
    /// Start hashing an object of `kind` (the kind tag seeds both lanes,
    /// keeping chunk and delta namespaces disjoint).
    pub fn new(kind: ObjectKind) -> Self {
        ObjectHasher {
            a: FNV_OFFSET ^ u64::from(kind.tag()),
            b: FNV_OFFSET ^ 0x9E37_79B9_7F4A_7C15 ^ u64::from(kind.tag()).rotate_left(17),
            len: 0,
        }
    }

    /// Absorb the next run of object bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte ^ 0x5A)).wrapping_mul(FNV_PRIME);
        }
        self.len += bytes.len() as u64;
    }

    /// The content address of everything absorbed so far.
    pub fn finish(self) -> ObjectId {
        ObjectId(
            splitmix64(self.a ^ self.len),
            splitmix64(self.b ^ self.len.rotate_left(32)),
        )
    }
}

/// Content address of an object: hash over the kind tag and the bytes.
///
/// Hashing the kind in makes chunk and delta namespaces disjoint — the same
/// byte string stored as both kinds yields two ids.
pub fn hash_object(kind: ObjectKind, bytes: &[u8]) -> ObjectId {
    let mut h = ObjectHasher::new(kind);
    h.update(bytes);
    h.finish()
}

/// Typed failure modes of a storage backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level I/O failure (the persistent backend only).
    Io {
        /// What the store was doing.
        op: &'static str,
        /// The failing path.
        path: String,
        /// `std::io::Error` rendering (the error itself is not `Clone`).
        detail: String,
    },
    /// The requested object is not in the store.
    Missing {
        /// The id that failed to resolve.
        id: ObjectId,
    },
    /// Bytes read back do not hash to the id they were stored under, or a
    /// record failed to decode — on-disk (or injected) corruption.
    Corrupt {
        /// The object whose bytes are corrupt.
        id: ObjectId,
        /// What exactly failed.
        detail: String,
    },
    /// A pack or index file has a malformed header/record and cannot be
    /// opened as a store.
    InvalidFormat {
        /// What failed to parse.
        detail: String,
    },
    /// [`Store::release`] on an object whose reference count is already
    /// zero — a plan double-free, always a caller bug.
    AlreadyReleased {
        /// The over-released object.
        id: ObjectId,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, detail } => {
                write!(f, "i/o error during {op} on {path}: {detail}")
            }
            StoreError::Missing { id } => write!(f, "object {id} is not in the store"),
            StoreError::Corrupt { id, detail } => write!(f, "object {id} is corrupt: {detail}"),
            StoreError::InvalidFormat { detail } => write!(f, "invalid store format: {detail}"),
            StoreError::AlreadyReleased { id } => {
                write!(f, "object {id} released more times than retained")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Metadata of one stored object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Chunk or delta.
    pub kind: ObjectKind,
    /// Payload length in bytes.
    pub len: u64,
    /// Current reference count.
    pub refcount: u32,
}

/// What a [`Store::gc`] pass reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Objects dropped (reference count was zero).
    pub collected_objects: usize,
    /// Payload bytes those objects held.
    pub reclaimed_bytes: u64,
}

/// A content-addressed, reference-counted object store.
///
/// `put` is idempotent on content: writing bytes that hash to an existing
/// id bumps that object's reference count instead of storing a second
/// copy. Every successful `put` (and every [`Store::retain`]) must be
/// balanced by a [`Store::release`] before [`Store::gc`] may reclaim the
/// object; GC only ever touches objects whose count has reached zero, so
/// an object reachable from a live (retained) plan can never be collected.
pub trait Store {
    /// Store `bytes` as an object of `kind`, returning its content address.
    /// The object's reference count is incremented (from zero on first
    /// write), so the caller owns one reference afterwards.
    fn put(&mut self, kind: ObjectKind, bytes: &[u8]) -> Result<ObjectId, StoreError>;

    /// Read an object back, verifying that the bytes still hash to `id`
    /// (a mismatch is [`StoreError::Corrupt`]).
    fn get(&self, id: ObjectId) -> Result<Vec<u8>, StoreError>;

    /// Read an object without copying when the backend can serve resident
    /// bytes: [`MemStore`] borrows straight from its object table and
    /// [`PackStore`] serves slices of its resident pack map, so the hot
    /// read path stops allocating per object. Backends without resident
    /// bytes fall back to the owned [`Store::get`]. The same integrity
    /// guarantee holds: the returned bytes hash to `id` or the read fails
    /// with [`StoreError::Corrupt`].
    fn get_ref(&self, id: ObjectId) -> Result<Cow<'_, [u8]>, StoreError> {
        self.get(id).map(Cow::Owned)
    }

    /// Metadata of an object, or `None` if absent.
    fn meta(&self, id: ObjectId) -> Option<ObjectMeta>;

    /// Whether `id` is present.
    fn contains(&self, id: ObjectId) -> bool {
        self.meta(id).is_some()
    }

    /// Add one reference to an existing object.
    fn retain(&mut self, id: ObjectId) -> Result<(), StoreError>;

    /// Drop one reference. The object stays readable until [`Store::gc`].
    fn release(&mut self, id: ObjectId) -> Result<(), StoreError>;

    /// Reclaim every object whose reference count is zero.
    fn gc(&mut self) -> Result<GcStats, StoreError>;

    /// Number of live objects.
    fn object_count(&self) -> usize;

    /// Total payload bytes of live objects.
    fn stored_bytes(&self) -> u64;

    /// Persist any buffered state (no-op for in-memory backends).
    fn flush(&mut self) -> Result<(), StoreError>;

    /// Rewrite the bytes of an *existing* object in place — the recovery
    /// half of self-healing reads. The bytes must hash to `id` under
    /// `kind` (anything else is rejected as [`StoreError::Corrupt`]
    /// without touching the store), and the object must already have an
    /// entry (repairing an absent object is [`StoreError::Missing`]).
    /// The reference count is preserved exactly.
    fn repair(&mut self, id: ObjectId, kind: ObjectKind, bytes: &[u8]) -> Result<(), StoreError>;
}

/// The in-memory backend: the synthesized corpus held behind the [`Store`]
/// trait, exactly as previous PRs held it, just content-addressed and
/// reference-counted. Nothing touches disk.
#[derive(Clone, Debug, Default)]
pub struct MemStore {
    objects: BTreeMap<ObjectId, MemObject>,
}

#[derive(Clone, Debug)]
struct MemObject {
    kind: ObjectKind,
    bytes: Vec<u8>,
    refcount: u32,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Store for MemStore {
    fn put(&mut self, kind: ObjectKind, bytes: &[u8]) -> Result<ObjectId, StoreError> {
        let id = hash_object(kind, bytes);
        self.objects
            .entry(id)
            .and_modify(|o| o.refcount += 1)
            .or_insert_with(|| MemObject {
                kind,
                bytes: bytes.to_vec(),
                refcount: 1,
            });
        Ok(id)
    }

    fn get(&self, id: ObjectId) -> Result<Vec<u8>, StoreError> {
        self.get_ref(id).map(Cow::into_owned)
    }

    fn get_ref(&self, id: ObjectId) -> Result<Cow<'_, [u8]>, StoreError> {
        let obj = self.objects.get(&id).ok_or(StoreError::Missing { id })?;
        let actual = hash_object(obj.kind, &obj.bytes);
        if actual != id {
            return Err(StoreError::Corrupt {
                id,
                detail: format!("bytes hash to {actual}"),
            });
        }
        Ok(Cow::Borrowed(obj.bytes.as_slice()))
    }

    fn meta(&self, id: ObjectId) -> Option<ObjectMeta> {
        self.objects.get(&id).map(|o| ObjectMeta {
            kind: o.kind,
            len: o.bytes.len() as u64,
            refcount: o.refcount,
        })
    }

    fn retain(&mut self, id: ObjectId) -> Result<(), StoreError> {
        let obj = self
            .objects
            .get_mut(&id)
            .ok_or(StoreError::Missing { id })?;
        obj.refcount += 1;
        Ok(())
    }

    fn release(&mut self, id: ObjectId) -> Result<(), StoreError> {
        let obj = self
            .objects
            .get_mut(&id)
            .ok_or(StoreError::Missing { id })?;
        if obj.refcount == 0 {
            return Err(StoreError::AlreadyReleased { id });
        }
        obj.refcount -= 1;
        Ok(())
    }

    fn gc(&mut self) -> Result<GcStats, StoreError> {
        let mut stats = GcStats::default();
        self.objects.retain(|_, o| {
            if o.refcount == 0 {
                stats.collected_objects += 1;
                stats.reclaimed_bytes += o.bytes.len() as u64;
                false
            } else {
                true
            }
        });
        Ok(stats)
    }

    fn object_count(&self) -> usize {
        self.objects.len()
    }

    fn stored_bytes(&self) -> u64 {
        self.objects.values().map(|o| o.bytes.len() as u64).sum()
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn repair(&mut self, id: ObjectId, kind: ObjectKind, bytes: &[u8]) -> Result<(), StoreError> {
        let actual = hash_object(kind, bytes);
        if actual != id {
            return Err(StoreError::Corrupt {
                id,
                detail: format!("repair bytes hash to {actual}"),
            });
        }
        let obj = self
            .objects
            .get_mut(&id)
            .ok_or(StoreError::Missing { id })?;
        obj.kind = kind;
        obj.bytes = bytes.to_vec();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_kind_separated() {
        let a = hash_object(ObjectKind::Chunk, b"hello");
        let b = hash_object(ObjectKind::Chunk, b"hello");
        assert_eq!(a, b);
        assert_ne!(a, hash_object(ObjectKind::Delta, b"hello"));
        assert_ne!(a, hash_object(ObjectKind::Chunk, b"hellp"));
        // Length is mixed in: a prefix must not collide.
        assert_ne!(
            hash_object(ObjectKind::Chunk, b""),
            hash_object(ObjectKind::Chunk, b"\0")
        );
    }

    #[test]
    fn incremental_hasher_matches_one_shot() {
        let bytes = b"incrementally hashed object bytes";
        for kind in [ObjectKind::Chunk, ObjectKind::Delta] {
            let mut h = ObjectHasher::new(kind);
            for chunk in bytes.chunks(5) {
                h.update(chunk);
            }
            assert_eq!(h.finish(), hash_object(kind, bytes));
        }
    }

    #[test]
    fn mem_get_ref_borrows_and_verifies() {
        let mut s = MemStore::new();
        let id = s.put(ObjectKind::Chunk, b"resident bytes").expect("put");
        let bytes = s.get_ref(id).expect("get_ref");
        assert!(matches!(bytes, Cow::Borrowed(_)), "MemStore must not copy");
        assert_eq!(&*bytes, b"resident bytes");
        drop(bytes);
        s.objects.get_mut(&id).expect("present").bytes[0] ^= 0xFF;
        assert!(matches!(s.get_ref(id), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn mem_put_get_roundtrip_and_dedup() {
        let mut s = MemStore::new();
        let id1 = s.put(ObjectKind::Chunk, b"payload").expect("put");
        let id2 = s.put(ObjectKind::Chunk, b"payload").expect("put");
        assert_eq!(id1, id2);
        assert_eq!(s.object_count(), 1);
        assert_eq!(s.meta(id1).expect("meta").refcount, 2);
        assert_eq!(s.get(id1).expect("get"), b"payload");
    }

    #[test]
    fn mem_release_and_gc() {
        let mut s = MemStore::new();
        let live = s.put(ObjectKind::Chunk, b"live").expect("put");
        let dead = s.put(ObjectKind::Delta, b"dead").expect("put");
        s.release(dead).expect("release");
        let stats = s.gc().expect("gc");
        assert_eq!(stats.collected_objects, 1);
        assert_eq!(stats.reclaimed_bytes, 4);
        assert!(s.contains(live));
        assert!(!s.contains(dead));
        // Over-release is a typed error.
        s.release(live).expect("release to zero");
        assert!(matches!(
            s.release(live),
            Err(StoreError::AlreadyReleased { .. })
        ));
    }

    #[test]
    fn mem_corruption_is_detected_and_repairable() {
        let mut s = MemStore::new();
        let id = s.put(ObjectKind::Chunk, b"precious bytes").expect("put");
        s.retain(id).expect("retain");
        s.objects.get_mut(&id).expect("present").bytes[0] ^= 0xFF;
        assert!(matches!(s.get(id), Err(StoreError::Corrupt { .. })));
        // Repair restores the bytes without touching the refcount.
        s.repair(id, ObjectKind::Chunk, b"precious bytes")
            .expect("repair");
        assert_eq!(s.get(id).expect("healed"), b"precious bytes");
        assert_eq!(s.meta(id).expect("meta").refcount, 2);
        // Wrong bytes and absent objects are typed rejections.
        assert!(matches!(
            s.repair(id, ObjectKind::Chunk, b"imposter bytes"),
            Err(StoreError::Corrupt { .. })
        ));
        let ghost = hash_object(ObjectKind::Delta, b"ghost");
        assert!(matches!(
            s.repair(ghost, ObjectKind::Delta, b"ghost"),
            Err(StoreError::Missing { .. })
        ));
    }

    #[test]
    fn missing_objects_are_typed() {
        let s = MemStore::new();
        let ghost = hash_object(ObjectKind::Chunk, b"ghost");
        assert!(matches!(s.get(ghost), Err(StoreError::Missing { .. })));
    }
}
