//! The persistent content-addressed backend.
//!
//! On-disk layout under the store directory:
//!
//! ```text
//! <dir>/pack.dsv     append-only pack: "DSVPACK1" magic, then records
//!                    [id 16B][kind 1B][len 8B LE][payload]
//! <dir>/pack.idx     fixed-width index: "DSVIDX01" magic, entry count,
//!                    then 44-byte entries sorted by id:
//!                    [id 16B][offset 8B][len 8B][kind 1B][pad 3B][rc 4B]
//! <dir>/objects/     loose files for large objects, named by their hex id
//! ```
//!
//! Small objects are appended to the pack; objects at or above the loose
//! threshold become individual hash-keyed files (the classic loose/packed
//! split). The index is fixed-width and sorted so an external reader can
//! binary-search it straight from an `mmap` without parsing; this crate
//! reads it eagerly into a map on open. Reference counts are persisted in
//! the index, so retain/release balances survive process restarts.
//!
//! [`Store::gc`] compacts: dead loose files are unlinked and the pack is
//! rewritten with only live records (then atomically swapped in), so
//! reclaimed bytes are returned to the filesystem, not just forgotten.
//!
//! # Durability
//!
//! Under [`Durability::Full`] (the default) every write site issues the
//! fsync barriers that make its atomicity real: loose files and the index
//! are written tmp → `sync_all` → rename → directory fsync, the pack file
//! is synced *before* the index that points into it, and GC persists the
//! zero refcounts *before* destroying any bytes. Acknowledgement contract:
//! a loose `put` is durable when it returns; packed `put`s are durable at
//! the next [`Store::flush`]. [`Durability::None`] skips every sync (for
//! benches and throwaway stores) while keeping the same write ordering.
//!
//! Crash consistency is tested, not assumed: [`PackStore::arm_crash`]
//! makes the next write at a chosen [`CrashPoint`] tear its bytes
//! mid-operation and poison the store, exactly as a power loss would, and
//! the crash-matrix test reopens after each point. Recovery on open cleans
//! stray tmp files, validates the index against the pack (a stale index —
//! e.g. a crash between GC's pack swap and its index write — is rebuilt
//! from the pack with reference counts carried over by id), scans back any
//! unindexed appended records, and truncates torn tails.

use super::{hash_object, GcStats, ObjectId, ObjectKind, ObjectMeta, Store, StoreError};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const PACK_MAGIC: &[u8; 8] = b"DSVPACK1";
const IDX_MAGIC: &[u8; 8] = b"DSVIDX01";
const RECORD_HEADER: u64 = 16 + 1 + 8;
const IDX_ENTRY: usize = 16 + 8 + 8 + 1 + 3 + 4;

/// Objects at or above this many bytes are stored as loose hash-keyed
/// files instead of pack records.
pub const DEFAULT_LOOSE_THRESHOLD: u64 = 32 * 1024;

/// Sentinel offset marking a loose object in the index.
const LOOSE_OFFSET: u64 = u64::MAX;

/// Which fsync barriers a [`PackStore`] issues. See the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// No syncs at all: fastest, survives process crashes (the kernel
    /// still writes the data back) but not power loss.
    None,
    /// Every write site issues its full barrier sequence; an acknowledged
    /// loose put or a completed flush survives power loss.
    #[default]
    Full,
}

/// Options controlling how a [`PackStore`] is opened.
#[derive(Clone, Copy, Debug)]
pub struct PackOptions {
    /// Objects at or above this many bytes become loose files.
    pub loose_threshold: u64,
    /// Which fsync barriers the store issues.
    pub durability: Durability,
}

impl Default for PackOptions {
    fn default() -> Self {
        PackOptions {
            loose_threshold: DEFAULT_LOOSE_THRESHOLD,
            durability: Durability::Full,
        }
    }
}

/// The enumerated write sites where [`PackStore::arm_crash`] can simulate
/// power loss: the write tears mid-operation (half the bytes land, or the
/// rename never happens) and the store poisons itself — every later call
/// fails until the caller drops it and reopens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Mid-append of a packed record.
    PackAppend,
    /// Mid-write of a loose object's tmp file.
    LooseWrite,
    /// Mid-write of the index tmp file.
    IndexWrite,
    /// After the index tmp is written but before the rename.
    IndexRename,
    /// Mid-write of the GC-compacted pack tmp file.
    GcRewrite,
    /// After the compacted pack tmp is written but before the rename.
    GcRename,
    /// After the compacted pack is swapped in but before the final index
    /// write — the window where the on-disk index is stale.
    GcIndex,
}

impl CrashPoint {
    /// Every enumerated crash point, for matrix tests.
    pub const ALL: [CrashPoint; 7] = [
        CrashPoint::PackAppend,
        CrashPoint::LooseWrite,
        CrashPoint::IndexWrite,
        CrashPoint::IndexRename,
        CrashPoint::GcRewrite,
        CrashPoint::GcRename,
        CrashPoint::GcIndex,
    ];
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    /// Byte offset of the record in `pack.dsv`, or [`LOOSE_OFFSET`].
    offset: u64,
    len: u64,
    kind: ObjectKind,
    refcount: u32,
}

/// Where an object physically lives — exposed for tooling and for
/// fault-injection tests that corrupt real bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjectLocation {
    /// A record inside `pack.dsv`; `payload_offset` is where the payload
    /// bytes start.
    Packed {
        /// Offset of the first payload byte in the pack file.
        payload_offset: u64,
        /// Payload length.
        len: u64,
    },
    /// A loose file holding exactly the payload bytes.
    Loose {
        /// The loose file's path.
        path: PathBuf,
    },
}

/// The persistent content-addressed store. See the module docs for the
/// layout.
#[derive(Debug)]
pub struct PackStore {
    dir: PathBuf,
    pack_path: PathBuf,
    idx_path: PathBuf,
    entries: BTreeMap<ObjectId, Entry>,
    pack_len: u64,
    loose_threshold: u64,
    durability: Durability,
    /// Armed crash point (single-shot; see [`PackStore::arm_crash`]).
    crash: Option<CrashPoint>,
    /// Set when an armed crash point fired: the store refuses every
    /// operation and [`Drop`] skips the index write, as a dead process
    /// would.
    crashed: bool,
    /// Cached read handle for the pack file (lazily opened, invalidated
    /// when GC swaps the file), so the read path costs a seek, not an
    /// open, per object.
    reader: std::sync::Mutex<Option<File>>,
    /// Resident pack map: the whole pack file read once and kept in
    /// memory so [`Store::get_ref`] serves verified *slices* instead of
    /// allocating a `Vec` per packed read. Loaded lazily on the first
    /// `get_ref`; dropped (and lazily rebuilt) whenever the mapping could
    /// go stale — a packed append extends the file past the map, and GC
    /// compaction rewrites it with new offsets entirely.
    resident: std::sync::OnceLock<Box<[u8]>>,
}

fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io {
        op,
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

impl PackStore {
    /// Open (or create) a store under `dir` with default options.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_with(dir, PackOptions::default())
    }

    /// Open (or create) a store under `dir`, storing objects of at least
    /// `loose_threshold` bytes as loose files.
    pub fn open_with_threshold(
        dir: impl Into<PathBuf>,
        loose_threshold: u64,
    ) -> Result<Self, StoreError> {
        Self::open_with(
            dir,
            PackOptions {
                loose_threshold,
                ..PackOptions::default()
            },
        )
    }

    /// Open (or create) a store under `dir` with explicit [`PackOptions`].
    pub fn open_with(dir: impl Into<PathBuf>, options: PackOptions) -> Result<Self, StoreError> {
        let dir = dir.into();
        let objects = dir.join("objects");
        std::fs::create_dir_all(&objects).map_err(|e| io_err("create_dir", &objects, e))?;
        let pack_path = dir.join("pack.dsv");
        let idx_path = dir.join("pack.idx");

        let mut store = PackStore {
            dir,
            pack_path,
            idx_path,
            entries: BTreeMap::new(),
            pack_len: 0,
            loose_threshold: options.loose_threshold,
            durability: options.durability,
            crash: None,
            crashed: false,
            reader: std::sync::Mutex::new(None),
            resident: std::sync::OnceLock::new(),
        };
        // A crash can leave half-written tmp files anywhere we stage
        // writes; none of them is referenced by anything, so clear them
        // before reading any state.
        store.clean_stale_tmp()?;
        store.init_pack()?;
        if store.idx_path.exists() {
            let parsed = store.parse_index()?;
            if store.index_matches_pack(&parsed)? {
                store.entries = parsed.into_iter().collect();
                // Crash recovery: records appended after the index was last
                // written (put without flush) are scanned back in; a torn
                // trailing record is truncated away so future appends land
                // on a valid boundary.
                store.scan_pack_tail()?;
                // A crash mid-GC can leave dead loose entries whose files
                // were already unlinked; the unlink was the desired end
                // state, so finish the job. (A *live* loose entry with a
                // missing file is real data loss and is left to surface
                // as a read error.)
                let orphaned: Vec<ObjectId> = store
                    .entries
                    .iter()
                    .filter(|(&id, e)| {
                        e.offset == LOOSE_OFFSET
                            && e.refcount == 0
                            && !store.loose_path(id).exists()
                    })
                    .map(|(&id, _)| id)
                    .collect();
                for id in orphaned {
                    store.entries.remove(&id);
                }
            } else {
                // The index is stale — e.g. a crash landed between GC's
                // pack swap and its index write, so the entries point into
                // a pack that no longer matches. Rebuild from the pack and
                // loose directory, then carry reference counts over by id:
                // ids absent from the rebuilt state were dead and simply
                // drop out.
                let stale: BTreeMap<ObjectId, u32> =
                    parsed.into_iter().map(|(id, e)| (id, e.refcount)).collect();
                store.rebuild_index()?;
                for (id, e) in store.entries.iter_mut() {
                    if let Some(&rc) = stale.get(id) {
                        e.refcount = rc;
                    }
                }
                store.write_index()?;
            }
        } else if store.pack_len > PACK_MAGIC.len() as u64 || store.any_loose()? {
            // Recovery: no index but data exists — rebuild from the pack
            // and the loose directory. Reference counts are unknown; every
            // recovered object gets one reference.
            store.rebuild_index()?;
        }
        Ok(store)
    }

    /// Arm a single-shot simulated power loss at `point`: the next write
    /// reaching that site tears its bytes mid-operation, the store marks
    /// itself crashed, and every later call fails with [`StoreError::Io`]
    /// until the caller drops the store (which skips the exit index write,
    /// as a dead process would) and reopens.
    pub fn arm_crash(&mut self, point: CrashPoint) {
        self.crash = Some(point);
    }

    /// Whether an armed crash point has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The store's durability mode.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    fn durable(&self) -> bool {
        self.durability == Durability::Full
    }

    fn check_crashed(&self) -> Result<(), StoreError> {
        if self.crashed {
            return Err(StoreError::Io {
                op: "crashed",
                path: self.dir.display().to_string(),
                detail: "store hit a simulated crash point; reopen to recover".into(),
            });
        }
        Ok(())
    }

    /// Consume an armed crash point if it matches `point`.
    fn hit_crash(&mut self, point: CrashPoint) -> bool {
        if self.crash == Some(point) {
            self.crash = None;
            self.crashed = true;
            true
        } else {
            false
        }
    }

    fn crash_err(&self, point: CrashPoint) -> StoreError {
        StoreError::Io {
            op: "injected-crash",
            path: self.dir.display().to_string(),
            detail: format!("simulated power loss at {point:?}"),
        }
    }

    /// fsync a directory so a just-renamed or just-unlinked entry is
    /// durable (no-op under [`Durability::None`]).
    fn fsync_dir(&self, dir: &Path) -> Result<(), StoreError> {
        if !self.durable() {
            return Ok(());
        }
        File::open(dir)
            .and_then(|f| f.sync_all())
            .map_err(|e| io_err("fsync-dir", dir, e))
    }

    /// Remove stray `*.tmp` staging files left by a crash: the pack
    /// compaction tmp, the index tmp, and loose-object tmps.
    fn clean_stale_tmp(&self) -> Result<(), StoreError> {
        for tmp in [
            self.pack_path.with_extension("dsv.tmp"),
            self.idx_path.with_extension("idx.tmp"),
        ] {
            if tmp.exists() {
                std::fs::remove_file(&tmp).map_err(|e| io_err("remove", &tmp, e))?;
            }
        }
        let objects = self.dir.join("objects");
        let rd = std::fs::read_dir(&objects).map_err(|e| io_err("read_dir", &objects, e))?;
        for dirent in rd {
            let dirent = dirent.map_err(|e| io_err("read_dir", &objects, e))?;
            let path = dirent.path();
            if path.extension().is_some_and(|ext| ext == "tmp") {
                std::fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))?;
            }
        }
        Ok(())
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the pack file.
    pub fn pack_path(&self) -> &Path {
        &self.pack_path
    }

    /// Total bytes of the pack file (including dead records until the next
    /// [`Store::gc`]).
    pub fn pack_file_len(&self) -> u64 {
        self.pack_len
    }

    /// Where an object physically lives, or `None` if absent.
    pub fn locate(&self, id: ObjectId) -> Option<ObjectLocation> {
        let e = self.entries.get(&id)?;
        Some(if e.offset == LOOSE_OFFSET {
            ObjectLocation::Loose {
                path: self.loose_path(id),
            }
        } else {
            ObjectLocation::Packed {
                payload_offset: e.offset + RECORD_HEADER,
                len: e.len,
            }
        })
    }

    fn loose_path(&self, id: ObjectId) -> PathBuf {
        self.dir.join("objects").join(id.to_string())
    }

    fn any_loose(&self) -> Result<bool, StoreError> {
        let objects = self.dir.join("objects");
        let mut it = std::fs::read_dir(&objects).map_err(|e| io_err("read_dir", &objects, e))?;
        Ok(it.next().is_some())
    }

    /// Ensure the pack file exists with a valid magic; record its length.
    fn init_pack(&mut self) -> Result<(), StoreError> {
        let mut f = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&self.pack_path)
            .map_err(|e| io_err("open", &self.pack_path, e))?;
        let len = f
            .metadata()
            .map_err(|e| io_err("stat", &self.pack_path, e))?
            .len();
        if len == 0 {
            f.write_all(PACK_MAGIC)
                .map_err(|e| io_err("write", &self.pack_path, e))?;
            self.pack_len = PACK_MAGIC.len() as u64;
        } else {
            let mut magic = [0u8; 8];
            f.seek(SeekFrom::Start(0))
                .and_then(|_| f.read_exact(&mut magic))
                .map_err(|e| io_err("read", &self.pack_path, e))?;
            if &magic != PACK_MAGIC {
                return Err(StoreError::InvalidFormat {
                    detail: format!("{} has a bad magic", self.pack_path.display()),
                });
            }
            self.pack_len = len;
        }
        Ok(())
    }

    /// Parse the index file into entries. A malformed header, truncated
    /// body, or unknown kind tag is a hard [`StoreError::InvalidFormat`] —
    /// the file is not an index. Offsets are *not* validated here:
    /// staleness against the pack is [`Self::index_matches_pack`]'s job,
    /// and a stale index is recoverable, not fatal.
    fn parse_index(&self) -> Result<Vec<(ObjectId, Entry)>, StoreError> {
        let bytes = std::fs::read(&self.idx_path).map_err(|e| io_err("read", &self.idx_path, e))?;
        let bad = |detail: String| StoreError::InvalidFormat { detail };
        if bytes.len() < 16 || &bytes[..8] != IDX_MAGIC {
            return Err(bad(format!("{} has a bad header", self.idx_path.display())));
        }
        let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        if bytes.len() != 16 + count * IDX_ENTRY {
            return Err(bad(format!(
                "{}: {} bytes for {count} entries",
                self.idx_path.display(),
                bytes.len()
            )));
        }
        let mut parsed = Vec::with_capacity(count);
        for i in 0..count {
            let e = &bytes[16 + i * IDX_ENTRY..16 + (i + 1) * IDX_ENTRY];
            let id = ObjectId(
                u64::from_le_bytes(e[0..8].try_into().expect("8 bytes")),
                u64::from_le_bytes(e[8..16].try_into().expect("8 bytes")),
            );
            let offset = u64::from_le_bytes(e[16..24].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(e[24..32].try_into().expect("8 bytes"));
            let kind = ObjectKind::from_tag(e[32])
                .ok_or_else(|| bad(format!("index entry {i} has kind tag {}", e[32])))?;
            let refcount = u32::from_le_bytes(e[36..40].try_into().expect("4 bytes"));
            parsed.push((
                id,
                Entry {
                    offset,
                    len,
                    kind,
                    refcount,
                },
            ));
        }
        Ok(parsed)
    }

    /// Whether a parsed index actually describes the current pack file:
    /// every packed entry must lie in bounds *and* the 16-byte record id
    /// at its offset must match. Either check failing means the index is
    /// stale (a crash window, or external corruption) and the caller must
    /// rebuild — loading it as-is could serve wrong bytes or read past
    /// EOF.
    fn index_matches_pack(&self, parsed: &[(ObjectId, Entry)]) -> Result<bool, StoreError> {
        let packed: Vec<&(ObjectId, Entry)> = parsed
            .iter()
            .filter(|(_, e)| e.offset != LOOSE_OFFSET)
            .collect();
        if packed.is_empty() {
            return Ok(true);
        }
        let mut f = File::open(&self.pack_path).map_err(|e| io_err("open", &self.pack_path, e))?;
        for (id, e) in packed {
            let end = e
                .offset
                .checked_add(RECORD_HEADER)
                .and_then(|x| x.checked_add(e.len));
            if e.offset < PACK_MAGIC.len() as u64 || end.is_none_or(|end| end > self.pack_len) {
                return Ok(false);
            }
            let mut rec_id = [0u8; 16];
            f.seek(SeekFrom::Start(e.offset))
                .and_then(|_| f.read_exact(&mut rec_id))
                .map_err(|err| io_err("read", &self.pack_path, err))?;
            let actual = ObjectId(
                u64::from_le_bytes(rec_id[0..8].try_into().expect("8 bytes")),
                u64::from_le_bytes(rec_id[8..16].try_into().expect("8 bytes")),
            );
            if actual != *id {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Recover records appended after the index was last written (a crash
    /// between `put` and `flush`): scan forward from the last indexed
    /// record, verify each candidate's payload hashes to its id, and adopt
    /// it with one reference. A torn trailing record (crash mid-append) is
    /// truncated away so future appends land on a valid boundary.
    fn scan_pack_tail(&mut self) -> Result<(), StoreError> {
        let covered = self
            .entries
            .values()
            .filter(|e| e.offset != LOOSE_OFFSET)
            .map(|e| e.offset + RECORD_HEADER + e.len)
            .max()
            .unwrap_or(PACK_MAGIC.len() as u64);
        if covered >= self.pack_len {
            return Ok(());
        }
        let mut f = File::open(&self.pack_path).map_err(|e| io_err("open", &self.pack_path, e))?;
        let mut offset = covered;
        let mut truncate_at = None;
        while offset < self.pack_len {
            if self.pack_len - offset < RECORD_HEADER {
                truncate_at = Some(offset);
                break;
            }
            f.seek(SeekFrom::Start(offset))
                .map_err(|e| io_err("seek", &self.pack_path, e))?;
            let mut rec = [0u8; RECORD_HEADER as usize];
            f.read_exact(&mut rec)
                .map_err(|e| io_err("read", &self.pack_path, e))?;
            let id = ObjectId(
                u64::from_le_bytes(rec[0..8].try_into().expect("8 bytes")),
                u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes")),
            );
            let kind = ObjectKind::from_tag(rec[16]);
            let len = u64::from_le_bytes(rec[17..25].try_into().expect("8 bytes"));
            let (Some(kind), true) = (kind, offset + RECORD_HEADER + len <= self.pack_len) else {
                truncate_at = Some(offset);
                break;
            };
            let mut payload = vec![0u8; len as usize];
            f.read_exact(&mut payload)
                .map_err(|e| io_err("read", &self.pack_path, e))?;
            if hash_object(kind, &payload) != id {
                truncate_at = Some(offset);
                break;
            }
            self.entries.entry(id).or_insert(Entry {
                offset,
                len,
                kind,
                refcount: 1,
            });
            offset += RECORD_HEADER + len;
        }
        if let Some(at) = truncate_at {
            drop(f);
            let w = OpenOptions::new()
                .write(true)
                .open(&self.pack_path)
                .map_err(|e| io_err("open", &self.pack_path, e))?;
            w.set_len(at)
                .map_err(|e| io_err("truncate", &self.pack_path, e))?;
            self.pack_len = at;
        }
        Ok(())
    }

    /// Write the fixed-width sorted index atomically: tmp → (sync) →
    /// rename → (directory fsync). The syncs make the rename a real
    /// barrier under [`Durability::Full`] — without them the rename can
    /// land before the tmp's data and a power loss leaves a valid-looking
    /// index full of garbage.
    fn write_index(&mut self) -> Result<(), StoreError> {
        let mut out = Vec::with_capacity(16 + self.entries.len() * IDX_ENTRY);
        out.extend_from_slice(IDX_MAGIC);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        // BTreeMap iterates sorted by id — the binary-search invariant.
        for (id, e) in &self.entries {
            out.extend_from_slice(&id.0.to_le_bytes());
            out.extend_from_slice(&id.1.to_le_bytes());
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.len.to_le_bytes());
            out.push(e.kind.tag());
            out.extend_from_slice(&[0u8; 3]);
            out.extend_from_slice(&e.refcount.to_le_bytes());
        }
        let tmp = self.idx_path.with_extension("idx.tmp");
        if self.hit_crash(CrashPoint::IndexWrite) {
            let _ = std::fs::write(&tmp, &out[..out.len() / 2]);
            return Err(self.crash_err(CrashPoint::IndexWrite));
        }
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            f.write_all(&out).map_err(|e| io_err("write", &tmp, e))?;
            if self.durable() {
                f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
            }
        }
        if self.hit_crash(CrashPoint::IndexRename) {
            return Err(self.crash_err(CrashPoint::IndexRename));
        }
        std::fs::rename(&tmp, &self.idx_path).map_err(|e| io_err("rename", &self.idx_path, e))?;
        self.fsync_dir(&self.dir)?;
        Ok(())
    }

    /// Rebuild the in-memory index by scanning the pack and the loose
    /// directory (recovery path when `pack.idx` is missing).
    fn rebuild_index(&mut self) -> Result<(), StoreError> {
        let mut f = File::open(&self.pack_path).map_err(|e| io_err("open", &self.pack_path, e))?;
        let mut header = [0u8; 8];
        f.read_exact(&mut header)
            .map_err(|e| io_err("read", &self.pack_path, e))?;
        let mut offset = PACK_MAGIC.len() as u64;
        while offset < self.pack_len {
            let mut rec = [0u8; RECORD_HEADER as usize];
            f.read_exact(&mut rec)
                .map_err(|e| io_err("read", &self.pack_path, e))?;
            let id = ObjectId(
                u64::from_le_bytes(rec[0..8].try_into().expect("8 bytes")),
                u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes")),
            );
            let kind = ObjectKind::from_tag(rec[16]).ok_or_else(|| StoreError::InvalidFormat {
                detail: format!("pack record at {offset} has kind tag {}", rec[16]),
            })?;
            let len = u64::from_le_bytes(rec[17..25].try_into().expect("8 bytes"));
            // Same bounds guard as load_index: a corrupted length field
            // must fail typed, not wrap the scan offset or seek past EOF.
            // (Payload integrity itself is re-checked on every get.)
            if offset
                .checked_add(RECORD_HEADER)
                .and_then(|x| x.checked_add(len))
                .is_none_or(|end| end > self.pack_len)
            {
                return Err(StoreError::InvalidFormat {
                    detail: format!(
                        "pack record at {offset} claims {len} bytes beyond the {} byte pack",
                        self.pack_len
                    ),
                });
            }
            self.entries.insert(
                id,
                Entry {
                    offset,
                    len,
                    kind,
                    refcount: 1,
                },
            );
            offset += RECORD_HEADER + len;
            f.seek(SeekFrom::Start(offset))
                .map_err(|e| io_err("seek", &self.pack_path, e))?;
        }
        let objects = self.dir.join("objects");
        let rd = std::fs::read_dir(&objects).map_err(|e| io_err("read_dir", &objects, e))?;
        for dirent in rd {
            let dirent = dirent.map_err(|e| io_err("read_dir", &objects, e))?;
            let name = dirent.file_name();
            let name = name.to_string_lossy();
            if name.len() != 32 {
                continue;
            }
            let (hi, lo) = name.split_at(16);
            let (Ok(a), Ok(b)) = (u64::from_str_radix(hi, 16), u64::from_str_radix(lo, 16)) else {
                continue;
            };
            let path = dirent.path();
            let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, e))?;
            // Loose files carry no kind tag; recover it by matching the hash.
            let id = ObjectId(a, b);
            let kind = [ObjectKind::Chunk, ObjectKind::Delta]
                .into_iter()
                .find(|&k| hash_object(k, &bytes) == id)
                .ok_or_else(|| StoreError::Corrupt {
                    id,
                    detail: "loose file does not hash to its name under any kind".into(),
                })?;
            self.entries.insert(
                id,
                Entry {
                    offset: LOOSE_OFFSET,
                    len: bytes.len() as u64,
                    kind,
                    refcount: 1,
                },
            );
        }
        Ok(())
    }

    /// Whether the resident pack map is currently loaded. Tests observe
    /// invalidation through this; callers can use it to decide whether a
    /// first read will pay the one-time load.
    pub fn resident_loaded(&self) -> bool {
        self.resident.get().is_some()
    }

    /// The resident pack map: the pack file read once into memory, after
    /// which packed [`Store::get_ref`] reads are verified slices. Reloaded
    /// lazily after `put`/`gc` invalidate it.
    fn resident_pack(&self) -> Result<&[u8], StoreError> {
        if let Some(bytes) = self.resident.get() {
            return Ok(bytes);
        }
        let bytes =
            std::fs::read(&self.pack_path).map_err(|e| io_err("read", &self.pack_path, e))?;
        // A concurrent reader may have raced the load and won; both read
        // the same immutable file, so either copy serves.
        let _ = self.resident.set(bytes.into_boxed_slice());
        Ok(self.resident.get().expect("resident just set"))
    }

    fn read_packed(&self, id: ObjectId, e: &Entry) -> Result<Vec<u8>, StoreError> {
        let mut guard = self.reader.lock().expect("pack reader lock");
        if guard.is_none() {
            *guard =
                Some(File::open(&self.pack_path).map_err(|e| io_err("open", &self.pack_path, e))?);
        }
        let f = guard.as_mut().expect("reader just opened");
        let mut rec = [0u8; RECORD_HEADER as usize];
        let mut payload = vec![0u8; e.len as usize];
        let io = f
            .seek(SeekFrom::Start(e.offset))
            .and_then(|_| f.read_exact(&mut rec))
            .and_then(|_| f.read_exact(&mut payload));
        if let Err(err) = io {
            // Drop the cached handle so the next read reopens cleanly.
            *guard = None;
            return Err(io_err("read", &self.pack_path, err));
        }
        let rec_id = ObjectId(
            u64::from_le_bytes(rec[0..8].try_into().expect("8 bytes")),
            u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes")),
        );
        if rec_id != id {
            return Err(StoreError::Corrupt {
                id,
                detail: format!("pack record at {} is for {rec_id}", e.offset),
            });
        }
        Ok(payload)
    }

    /// Append one record to the pack, returning its offset. Shared by
    /// `put` and `repair`. The append itself is not synced — packed writes
    /// are acknowledged durable at the next flush (which syncs the pack
    /// before the index pointing into it).
    fn append_record(
        &mut self,
        id: ObjectId,
        kind: ObjectKind,
        bytes: &[u8],
    ) -> Result<u64, StoreError> {
        let mut f = OpenOptions::new()
            .append(true)
            .open(&self.pack_path)
            .map_err(|e| io_err("open", &self.pack_path, e))?;
        let offset = self.pack_len;
        let mut rec = Vec::with_capacity(RECORD_HEADER as usize + bytes.len());
        rec.extend_from_slice(&id.0.to_le_bytes());
        rec.extend_from_slice(&id.1.to_le_bytes());
        rec.push(kind.tag());
        rec.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        rec.extend_from_slice(bytes);
        if self.hit_crash(CrashPoint::PackAppend) {
            // Tear the record: half its bytes land past the committed
            // length, exactly what a power loss mid-append leaves behind.
            // pack_len and the entry map are NOT updated — the record was
            // never acknowledged. Reopen truncates the torn tail.
            let _ = f.write_all(&rec[..rec.len() / 2]);
            return Err(self.crash_err(CrashPoint::PackAppend));
        }
        if let Err(e) = f.write_all(&rec) {
            // A partial append leaves garbage past pack_len; truncate
            // it away so the next put's recorded offset stays honest.
            let _ = f.set_len(self.pack_len);
            return Err(io_err("write", &self.pack_path, e));
        }
        self.pack_len += rec.len() as u64;
        // The resident map no longer covers the whole pack; drop it so
        // the next get_ref reloads one consistent snapshot. (Existing
        // offsets stay valid — the pack is append-only — so get_ref
        // additionally bounds-checks and falls back rather than ever
        // serving a slice the map does not cover.)
        self.resident = std::sync::OnceLock::new();
        Ok(offset)
    }

    /// Write a loose object: tmp → (sync) → rename → (directory fsync),
    /// so a crash mid-write can never leave a half-written file under the
    /// object's final name. Shared by `put` and `repair`.
    fn write_loose(&mut self, id: ObjectId, bytes: &[u8]) -> Result<(), StoreError> {
        let path = self.loose_path(id);
        let tmp = path.with_extension("tmp");
        if self.hit_crash(CrashPoint::LooseWrite) {
            let _ = std::fs::write(&tmp, &bytes[..bytes.len() / 2]);
            return Err(self.crash_err(CrashPoint::LooseWrite));
        }
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            f.write_all(bytes).map_err(|e| io_err("write", &tmp, e))?;
            if self.durable() {
                f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
            }
        }
        std::fs::rename(&tmp, &path).map_err(|e| io_err("rename", &path, e))?;
        self.fsync_dir(&self.dir.join("objects"))?;
        Ok(())
    }
}

impl Store for PackStore {
    fn put(&mut self, kind: ObjectKind, bytes: &[u8]) -> Result<ObjectId, StoreError> {
        self.check_crashed()?;
        let id = hash_object(kind, bytes);
        if let Some(e) = self.entries.get_mut(&id) {
            e.refcount += 1;
            return Ok(id);
        }
        let offset = if bytes.len() as u64 >= self.loose_threshold {
            self.write_loose(id, bytes)?;
            LOOSE_OFFSET
        } else {
            self.append_record(id, kind, bytes)?
        };
        self.entries.insert(
            id,
            Entry {
                offset,
                len: bytes.len() as u64,
                kind,
                refcount: 1,
            },
        );
        Ok(id)
    }

    fn get(&self, id: ObjectId) -> Result<Vec<u8>, StoreError> {
        self.check_crashed()?;
        let e = *self.entries.get(&id).ok_or(StoreError::Missing { id })?;
        let bytes = if e.offset == LOOSE_OFFSET {
            let path = self.loose_path(id);
            std::fs::read(&path).map_err(|err| io_err("read", &path, err))?
        } else {
            self.read_packed(id, &e)?
        };
        let actual = hash_object(e.kind, &bytes);
        if actual != id {
            return Err(StoreError::Corrupt {
                id,
                detail: format!("bytes hash to {actual}"),
            });
        }
        Ok(bytes)
    }

    fn get_ref(&self, id: ObjectId) -> Result<std::borrow::Cow<'_, [u8]>, StoreError> {
        self.check_crashed()?;
        let e = *self.entries.get(&id).ok_or(StoreError::Missing { id })?;
        if e.offset == LOOSE_OFFSET {
            // Loose objects stay owned reads: they are the large-object
            // tail, rare on the hot path and not worth keeping resident.
            return self.get(id).map(std::borrow::Cow::Owned);
        }
        let pack = self.resident_pack()?;
        let start = e.offset as usize;
        let end = start + RECORD_HEADER as usize + e.len as usize;
        let Some(rec) = pack.get(start..end) else {
            // The record was appended after this map was loaded (the map
            // is a still-valid prefix of the append-only pack, it just
            // does not cover the tail). Serve the owned fallback.
            return self.get(id).map(std::borrow::Cow::Owned);
        };
        let rec_id = ObjectId(
            u64::from_le_bytes(rec[0..8].try_into().expect("8 bytes")),
            u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes")),
        );
        if rec_id != id {
            return Err(StoreError::Corrupt {
                id,
                detail: format!("pack record at {} is for {rec_id}", e.offset),
            });
        }
        let payload = &rec[RECORD_HEADER as usize..];
        let actual = hash_object(e.kind, payload);
        if actual != id {
            return Err(StoreError::Corrupt {
                id,
                detail: format!("bytes hash to {actual}"),
            });
        }
        Ok(std::borrow::Cow::Borrowed(payload))
    }

    fn meta(&self, id: ObjectId) -> Option<ObjectMeta> {
        self.entries.get(&id).map(|e| ObjectMeta {
            kind: e.kind,
            len: e.len,
            refcount: e.refcount,
        })
    }

    fn retain(&mut self, id: ObjectId) -> Result<(), StoreError> {
        self.check_crashed()?;
        let e = self
            .entries
            .get_mut(&id)
            .ok_or(StoreError::Missing { id })?;
        e.refcount += 1;
        Ok(())
    }

    fn release(&mut self, id: ObjectId) -> Result<(), StoreError> {
        self.check_crashed()?;
        let e = self
            .entries
            .get_mut(&id)
            .ok_or(StoreError::Missing { id })?;
        if e.refcount == 0 {
            return Err(StoreError::AlreadyReleased { id });
        }
        e.refcount -= 1;
        Ok(())
    }

    fn gc(&mut self) -> Result<GcStats, StoreError> {
        self.check_crashed()?;
        let mut stats = GcStats::default();
        let dead: Vec<ObjectId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.refcount == 0)
            .map(|(&id, _)| id)
            .collect();
        if dead.is_empty() {
            return Ok(stats);
        }
        // Durability barrier: persist the zero refcounts *before*
        // destroying any bytes. Without this, a crash mid-GC reopens with
        // an older index whose counts say some unlinked object is live —
        // a resurrected dead record at best, a lost "live" object at
        // worst.
        if self.durable() {
            self.write_index()?;
        }
        let mut unlinked_loose = false;
        for &id in &dead {
            let e = self.entries.remove(&id).expect("dead entry exists");
            stats.collected_objects += 1;
            stats.reclaimed_bytes += e.len;
            if e.offset == LOOSE_OFFSET {
                let path = self.loose_path(id);
                // A prior crashed GC may already have unlinked this file;
                // its absence is the desired state, not an error.
                match std::fs::remove_file(&path) {
                    Ok(()) => unlinked_loose = true,
                    Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
                    Err(err) => return Err(io_err("remove", &path, err)),
                }
            }
        }
        if unlinked_loose {
            self.fsync_dir(&self.dir.join("objects"))?;
        }
        // Compact the pack: rewrite only live packed records, then swap.
        // New offsets are staged and applied only once the rename has
        // succeeded — a failure mid-compaction must leave the in-memory
        // index pointing at the intact old pack, not the abandoned tmp.
        let tmp = self.pack_path.with_extension("dsv.tmp");
        let mut staged_offsets: Vec<(ObjectId, u64)> = Vec::new();
        let mut new_len = PACK_MAGIC.len() as u64;
        {
            let mut out = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            out.write_all(PACK_MAGIC)
                .map_err(|e| io_err("write", &tmp, e))?;
            let live: Vec<ObjectId> = self
                .entries
                .iter()
                .filter(|(_, e)| e.offset != LOOSE_OFFSET)
                .map(|(&id, _)| id)
                .collect();
            let mut torn = false;
            for id in live {
                let e = self.entries[&id];
                let payload = self.read_packed(id, &e)?;
                let mut rec = Vec::with_capacity(RECORD_HEADER as usize + payload.len());
                rec.extend_from_slice(&id.0.to_le_bytes());
                rec.extend_from_slice(&id.1.to_le_bytes());
                rec.push(e.kind.tag());
                rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                rec.extend_from_slice(&payload);
                if self.hit_crash(CrashPoint::GcRewrite) {
                    let _ = out.write_all(&rec[..rec.len() / 2]);
                    torn = true;
                    break;
                }
                out.write_all(&rec).map_err(|e| io_err("write", &tmp, e))?;
                staged_offsets.push((id, new_len));
                new_len += rec.len() as u64;
            }
            if torn {
                return Err(self.crash_err(CrashPoint::GcRewrite));
            }
            if self.durable() {
                // The compacted pack's data must be on disk before the
                // rename makes it the pack.
                out.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
            }
        }
        if self.hit_crash(CrashPoint::GcRename) {
            return Err(self.crash_err(CrashPoint::GcRename));
        }
        std::fs::rename(&tmp, &self.pack_path).map_err(|e| io_err("rename", &self.pack_path, e))?;
        self.fsync_dir(&self.dir)?;
        for (id, offset) in staged_offsets {
            self.entries.get_mut(&id).expect("live entry").offset = offset;
        }
        self.pack_len = new_len;
        // The cached read handle still points at the pre-compaction file,
        // and the resident map's offsets are those of the old pack — both
        // must go, or reads after GC would serve stale bytes.
        *self.reader.lock().expect("pack reader lock") = None;
        self.resident = std::sync::OnceLock::new();
        if self.hit_crash(CrashPoint::GcIndex) {
            // The new pack is in place but the on-disk index still
            // describes the old one — the stale-index window that reopen
            // must detect and rebuild.
            return Err(self.crash_err(CrashPoint::GcIndex));
        }
        self.write_index()?;
        Ok(stats)
    }

    fn object_count(&self) -> usize {
        self.entries.len()
    }

    fn stored_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.len).sum()
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        self.check_crashed()?;
        if self.durable() {
            // Pack data before the index that points into it: an index
            // entry must never outlive a power loss that its record does
            // not survive.
            let f = File::open(&self.pack_path).map_err(|e| io_err("open", &self.pack_path, e))?;
            f.sync_all()
                .map_err(|e| io_err("sync", &self.pack_path, e))?;
        }
        self.write_index()
    }

    fn repair(&mut self, id: ObjectId, kind: ObjectKind, bytes: &[u8]) -> Result<(), StoreError> {
        self.check_crashed()?;
        let actual = hash_object(kind, bytes);
        if actual != id {
            return Err(StoreError::Corrupt {
                id,
                detail: format!("repair bytes hash to {actual}"),
            });
        }
        let e = *self.entries.get(&id).ok_or(StoreError::Missing { id })?;
        if e.offset == LOOSE_OFFSET {
            // Atomically replace the loose file under the same name.
            self.write_loose(id, bytes)?;
        } else {
            // Append a fresh record and point the entry at it; the
            // orphaned corrupt record is dropped at the next GC
            // compaction, and index rebuilds adopt the later record (the
            // pack scan inserts last-wins by offset).
            let offset = self.append_record(id, kind, bytes)?;
            let e = self.entries.get_mut(&id).expect("entry exists");
            e.offset = offset;
            e.len = bytes.len() as u64;
            e.kind = kind;
        }
        Ok(())
    }
}

impl Drop for PackStore {
    fn drop(&mut self) {
        // Best-effort index persistence; callers needing guarantees flush.
        // A crashed store writes nothing — the process it simulates died.
        if !self.crashed {
            let _ = self.write_index();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "dsv-pack-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn pack_roundtrip_dedup_and_loose_split() {
        let dir = temp_dir("roundtrip");
        let mut s = PackStore::open_with_threshold(&dir, 16).expect("open");
        let small = s.put(ObjectKind::Delta, b"small").expect("put");
        let big_bytes = vec![7u8; 64];
        let big = s.put(ObjectKind::Chunk, &big_bytes).expect("put");
        assert_eq!(s.put(ObjectKind::Delta, b"small").expect("dedup"), small);
        assert_eq!(s.meta(small).expect("meta").refcount, 2);
        assert_eq!(s.get(small).expect("get"), b"small");
        assert_eq!(s.get(big).expect("get"), big_bytes);
        assert!(matches!(
            s.locate(small),
            Some(ObjectLocation::Packed { .. })
        ));
        assert!(matches!(s.locate(big), Some(ObjectLocation::Loose { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_ref_serves_resident_slices_and_survives_append_and_gc() {
        use std::borrow::Cow;
        let dir = temp_dir("resident");
        let mut s = PackStore::open_with_threshold(&dir, 1 << 20).expect("open");
        let a = s.put(ObjectKind::Chunk, b"first object").expect("put");
        assert!(!s.resident_loaded(), "map loads lazily, not on open/put");
        let bytes = s.get_ref(a).expect("get_ref");
        assert!(
            matches!(bytes, Cow::Borrowed(_)),
            "packed reads must be slices of the resident map"
        );
        assert_eq!(&*bytes, b"first object");
        drop(bytes);
        assert!(s.resident_loaded());

        // An append invalidates the map; the next get_ref reloads one
        // snapshot covering both objects and serves slices again.
        let b = s.put(ObjectKind::Delta, b"appended object").expect("put");
        assert!(!s.resident_loaded(), "append must invalidate the map");
        assert!(matches!(s.get_ref(b).expect("new"), Cow::Borrowed(_)));
        assert_eq!(&*s.get_ref(a).expect("old"), b"first object");
        assert!(s.resident_loaded());

        // GC compaction moves offsets; a stale map would serve the wrong
        // record. The reload must reflect the compacted pack exactly.
        s.release(a).expect("release");
        s.gc().expect("gc");
        assert!(!s.resident_loaded(), "gc must invalidate the map");
        assert_eq!(&*s.get_ref(b).expect("survivor"), b"appended object");
        assert!(matches!(s.get_ref(a), Err(StoreError::Missing { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_ref_detects_on_disk_corruption() {
        let dir = temp_dir("refcorrupt");
        let mut s = PackStore::open_with_threshold(&dir, 1 << 20).expect("open");
        let id = s.put(ObjectKind::Chunk, b"fragile resident").expect("put");
        let Some(ObjectLocation::Packed { payload_offset, .. }) = s.locate(id) else {
            panic!("expected a packed object");
        };
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .open(s.pack_path())
            .expect("open pack");
        f.seek(SeekFrom::Start(payload_offset)).expect("seek");
        let mut byte = [0u8; 1];
        f.read_exact(&mut byte).expect("read");
        f.seek(SeekFrom::Start(payload_offset)).expect("seek");
        f.write_all(&[byte[0] ^ 0xFF]).expect("write");
        drop(f);
        assert!(matches!(s.get_ref(id), Err(StoreError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pack_persists_across_reopen() {
        let dir = temp_dir("reopen");
        let (a, b);
        {
            let mut s = PackStore::open_with_threshold(&dir, 16).expect("open");
            a = s.put(ObjectKind::Chunk, b"persistent").expect("put");
            b = s.put(ObjectKind::Chunk, &[3u8; 100]).expect("put");
            s.release(b).expect("release");
            s.flush().expect("flush");
        }
        let s = PackStore::open_with_threshold(&dir, 16).expect("reopen");
        assert_eq!(s.get(a).expect("get"), b"persistent");
        assert_eq!(s.meta(a).expect("meta").refcount, 1);
        // The released reference count survived the restart too.
        assert_eq!(s.meta(b).expect("meta").refcount, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_recovery_scans_pack_and_loose_files() {
        let dir = temp_dir("recover");
        let (small, big);
        {
            let mut s = PackStore::open_with_threshold(&dir, 16).expect("open");
            small = s.put(ObjectKind::Delta, b"packed one").expect("put");
            big = s.put(ObjectKind::Chunk, &[9u8; 40]).expect("put");
            s.flush().expect("flush");
        }
        std::fs::remove_file(dir.join("pack.idx")).expect("drop index");
        let s = PackStore::open_with_threshold(&dir, 16).expect("recover");
        assert_eq!(s.get(small).expect("get"), b"packed one");
        assert_eq!(s.get(big).expect("get"), vec![9u8; 40]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_compacts_pack_and_unlinks_loose() {
        let dir = temp_dir("gc");
        let mut s = PackStore::open_with_threshold(&dir, 16).expect("open");
        let keep = s.put(ObjectKind::Chunk, b"keep me").expect("put");
        let drop_small = s.put(ObjectKind::Delta, b"drop me").expect("put");
        let drop_big = s.put(ObjectKind::Chunk, &[1u8; 50]).expect("put");
        let before = s.pack_file_len();
        s.release(drop_small).expect("release");
        s.release(drop_big).expect("release");
        let stats = s.gc().expect("gc");
        assert_eq!(stats.collected_objects, 2);
        assert_eq!(stats.reclaimed_bytes, 7 + 50);
        assert!(s.pack_file_len() < before, "pack must shrink");
        assert_eq!(s.get(keep).expect("survivor"), b"keep me");
        assert!(matches!(s.get(drop_small), Err(StoreError::Missing { .. })));
        assert!(!dir.join("objects").join(drop_big.to_string()).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_index_recovers_appended_records_and_truncates_torn_tail() {
        let dir = temp_dir("tail");
        let (indexed, unindexed);
        {
            let mut s = PackStore::open_with_threshold(&dir, 1 << 20).expect("open");
            indexed = s.put(ObjectKind::Chunk, b"indexed object").expect("put");
            s.flush().expect("flush");
            // Appended after the last index write (simulates a crash
            // before flush) ...
            unindexed = s.put(ObjectKind::Delta, b"appended later").expect("put");
            // ... and Drop would persist the index, so put the stale one back.
            let stale = std::fs::read(dir.join("pack.idx")).expect("read idx");
            drop(s);
            std::fs::write(dir.join("pack.idx"), stale).expect("restore stale idx");
        }
        // A torn half-written record at the very end.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join("pack.dsv"))
                .expect("open pack");
            f.write_all(b"torn").expect("append garbage");
        }
        let s = PackStore::open_with_threshold(&dir, 1 << 20).expect("reopen");
        assert_eq!(s.get(indexed).expect("indexed"), b"indexed object");
        assert_eq!(s.get(unindexed).expect("recovered"), b"appended later");
        assert_eq!(s.meta(unindexed).expect("meta").refcount, 1);
        // The torn tail was truncated: appends land on a valid boundary.
        let mut s = s;
        let fresh = s.put(ObjectKind::Chunk, b"post-recovery").expect("put");
        assert_eq!(s.get(fresh).expect("get"), b"post-recovery");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_index_entry_triggers_rebuild_with_refcount_carryover() {
        let dir = temp_dir("badidx");
        let (victim, other);
        {
            let mut s = PackStore::open_with_threshold(&dir, 1 << 20).expect("open");
            victim = s.put(ObjectKind::Chunk, b"victim").expect("put");
            other = s.put(ObjectKind::Delta, b"bystander").expect("put");
            s.retain(other).expect("retain");
            s.flush().expect("flush");
        }
        // Blow up the first entry's length field (bytes 24..32 after the
        // 16-byte header and 16-byte id). The index no longer matches the
        // pack, so open must treat it as stale and rebuild — not refuse.
        let mut idx = std::fs::read(dir.join("pack.idx")).expect("read idx");
        idx[16 + 24..16 + 32].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(dir.join("pack.idx"), idx).expect("write idx");
        let s = PackStore::open_with_threshold(&dir, 1 << 20).expect("rebuild");
        assert_eq!(s.get(victim).expect("get"), b"victim");
        assert_eq!(s.get(other).expect("get"), b"bystander");
        // Refcounts carried over from the (parseable) stale entries.
        assert_eq!(s.meta(other).expect("meta").refcount, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_index_header_is_still_invalid_format() {
        let dir = temp_dir("badhdr");
        {
            let mut s = PackStore::open_with_threshold(&dir, 1 << 20).expect("open");
            s.put(ObjectKind::Chunk, b"victim").expect("put");
            s.flush().expect("flush");
        }
        let mut idx = std::fs::read(dir.join("pack.idx")).expect("read idx");
        idx[..8].copy_from_slice(b"NOTANIDX");
        std::fs::write(dir.join("pack.idx"), idx).expect("write idx");
        assert!(matches!(
            PackStore::open_with_threshold(&dir, 1 << 20),
            Err(StoreError::InvalidFormat { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repair_restores_packed_and_loose_objects_in_place() {
        let dir = temp_dir("repair");
        let mut s = PackStore::open_with_threshold(&dir, 16).expect("open");
        let packed = s.put(ObjectKind::Chunk, b"small").expect("put");
        let loose_bytes = vec![5u8; 64];
        let loose = s.put(ObjectKind::Chunk, &loose_bytes).expect("put");
        s.retain(packed).expect("retain");

        // Corrupt both on disk.
        let Some(ObjectLocation::Packed { payload_offset, .. }) = s.locate(packed) else {
            panic!("expected packed");
        };
        let mut f = OpenOptions::new()
            .write(true)
            .open(s.pack_path())
            .expect("open pack");
        f.seek(SeekFrom::Start(payload_offset)).expect("seek");
        f.write_all(&[b's' ^ 0xFF]).expect("write");
        drop(f);
        let Some(ObjectLocation::Loose { path }) = s.locate(loose) else {
            panic!("expected loose");
        };
        let mut corrupted = loose_bytes.clone();
        corrupted[0] ^= 0xFF;
        std::fs::write(&path, &corrupted).expect("corrupt loose");

        assert!(matches!(s.get(packed), Err(StoreError::Corrupt { .. })));
        assert!(matches!(s.get(loose), Err(StoreError::Corrupt { .. })));

        s.repair(packed, ObjectKind::Chunk, b"small")
            .expect("repair");
        s.repair(loose, ObjectKind::Chunk, &loose_bytes)
            .expect("repair");
        assert_eq!(s.get(packed).expect("healed"), b"small");
        assert_eq!(s.get(loose).expect("healed"), loose_bytes);
        assert_eq!(s.meta(packed).expect("meta").refcount, 2, "rc preserved");

        // The repair survives flush + reopen (rebuilds adopt the newer
        // record), and GC drops the orphaned corrupt record.
        s.flush().expect("flush");
        drop(s);
        let mut s = PackStore::open_with_threshold(&dir, 16).expect("reopen");
        assert_eq!(s.get(packed).expect("still healed"), b"small");
        s.release(packed).expect("release");
        s.release(packed).expect("release");
        s.release(loose).expect("release");
        s.gc().expect("gc");
        assert_eq!(s.get(loose).err(), Some(StoreError::Missing { id: loose }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_repair_bytes_are_rejected_untouched() {
        let dir = temp_dir("badrepair");
        let mut s = PackStore::open_with_threshold(&dir, 1 << 20).expect("open");
        let id = s.put(ObjectKind::Chunk, b"original").expect("put");
        assert!(matches!(
            s.repair(id, ObjectKind::Chunk, b"imposter"),
            Err(StoreError::Corrupt { .. })
        ));
        assert_eq!(s.get(id).expect("intact"), b"original");
        let ghost = hash_object(ObjectKind::Delta, b"ghost");
        assert!(matches!(
            s.repair(ghost, ObjectKind::Delta, b"ghost"),
            Err(StoreError::Missing { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn armed_crash_poisons_store_and_skips_exit_index_write() {
        let dir = temp_dir("crashpoison");
        let idx_before;
        {
            let mut s = PackStore::open_with_threshold(&dir, 1 << 20).expect("open");
            s.put(ObjectKind::Chunk, b"acknowledged").expect("put");
            s.flush().expect("flush");
            idx_before = std::fs::read(dir.join("pack.idx")).expect("read idx");
            s.arm_crash(CrashPoint::PackAppend);
            assert!(matches!(
                s.put(ObjectKind::Chunk, b"torn away"),
                Err(StoreError::Io { .. })
            ));
            assert!(s.crashed());
            // Every later op fails until reopen.
            assert!(s.put(ObjectKind::Chunk, b"more").is_err());
            assert!(s.flush().is_err());
            assert!(s.gc().is_err());
        }
        // Drop must NOT have rewritten the index (the process "died").
        let idx_after = std::fs::read(dir.join("pack.idx")).expect("read idx");
        assert_eq!(idx_before, idx_after);
        // Reopen recovers: the torn tail is truncated, the acknowledged
        // object survives.
        let mut s = PackStore::open_with_threshold(&dir, 1 << 20).expect("reopen");
        let id = hash_object(ObjectKind::Chunk, b"acknowledged");
        assert_eq!(s.get(id).expect("survivor"), b"acknowledged");
        let fresh = s.put(ObjectKind::Chunk, b"post-crash").expect("put");
        assert_eq!(s.get(fresh).expect("get"), b"post-crash");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_pack_bytes_surface_a_typed_error() {
        let dir = temp_dir("corrupt");
        let mut s = PackStore::open_with_threshold(&dir, 1 << 20).expect("open");
        let id = s.put(ObjectKind::Chunk, b"fragile payload").expect("put");
        let Some(ObjectLocation::Packed { payload_offset, .. }) = s.locate(id) else {
            panic!("expected a packed object");
        };
        // Flip one payload byte on disk.
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .open(s.pack_path())
            .expect("open pack");
        f.seek(SeekFrom::Start(payload_offset)).expect("seek");
        let mut byte = [0u8; 1];
        f.read_exact(&mut byte).expect("read");
        f.seek(SeekFrom::Start(payload_offset)).expect("seek");
        f.write_all(&[byte[0] ^ 0xFF]).expect("write");
        drop(f);
        assert!(matches!(s.get(id), Err(StoreError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
