//! Byte formats for stored objects, with the paper's exact cost model.
//!
//! Two object families exist, each in a text and a sketch flavor:
//!
//! * **Payloads** ([`Payload`]) — the canonical, self-contained encoding of
//!   one version's content: every file's lines for text corpora, the
//!   `(chunk id, size)` manifest for chunk-sketch corpora. Payload bytes
//!   are what gets content-addressed and hash-verified.
//! * **Deltas** — applyable edit scripts between two payloads: per-file
//!   Myers op runs with inserted lines inline (text), or chunk add/remove
//!   records (sketch).
//!
//! Decoding a delta yields [`DeltaCosts`] — the *measured* storage and
//! retrieval cost of the delta, priced by exactly the models that priced
//! the version-graph edges at synthesis time ([`crate::script::CostParams`]
//! for text, [`crate::chunks::SketchDelta`] for sketches). This is what
//! lets the executor check a plan's predicted costs against real stored
//! bytes and demand *exact* agreement.
//!
//! All formats are deterministic: files sorted by path, chunks sorted by
//! id, fixed little-endian integers — equal content always encodes to
//! equal bytes, so content addressing deduplicates across plans.

use super::{ObjectHasher, ObjectId, ObjectKind, StoreError};
use crate::chunks::SketchDelta;
use crate::script::{CostParams, EditScript};

const PAYLOAD_MAGIC: u8 = b'P';
const DELTA_MAGIC: u8 = b'D';
const TAG_TEXT: u8 = 1;
const TAG_SKETCH: u8 = 2;

/// Decoded version content.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Text content: files sorted by path.
    Text(Vec<TextFile>),
    /// Chunk manifest: `(chunk id, chunk size)` sorted by id.
    Sketch(Vec<(u64, u32)>),
}

/// One file of a text payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TextFile {
    /// File path.
    pub path: String,
    /// Line contents, without trailing newlines.
    pub lines: Vec<Vec<u8>>,
}

impl Payload {
    /// Content size in cost-model bytes — the node storage cost `s_v`:
    /// text lines count their newline, sketch chunks their declared size.
    pub fn content_size(&self) -> u64 {
        match self {
            Payload::Text(files) => files
                .iter()
                .flat_map(|f| f.lines.iter())
                .map(|l| l.len() as u64 + 1)
                .sum(),
            Payload::Sketch(chunks) => chunks.iter().map(|&(_, s)| s as u64).sum(),
        }
    }
}

/// One op of a text delta section, in source order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Copy this many lines from the source file.
    Equal(u32),
    /// Skip this many source lines.
    Delete(u32),
    /// Splice these lines in (contents inline, no trailing newlines).
    Insert(Vec<Vec<u8>>),
}

/// The per-file part of a text delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileDelta {
    /// Path the ops apply to.
    pub path: String,
    /// The destination version does not contain this file at all (the ops
    /// still run, then the file is dropped).
    pub dst_absent: bool,
    /// Myers op runs covering the whole source file.
    pub ops: Vec<DeltaOp>,
}

/// Measured costs of a decoded delta — the same models that priced the
/// graph edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaCosts {
    /// Text delta, priced by [`EditScript`] under [`CostParams::default`].
    Text(EditScript),
    /// Sketch delta, priced by [`SketchDelta`].
    Sketch(SketchDelta),
}

impl DeltaCosts {
    /// Storage cost of the delta in bytes (the edge cost `s_e`).
    pub fn storage_cost(&self) -> u64 {
        match self {
            DeltaCosts::Text(s) => s.storage_cost(&CostParams::default()),
            DeltaCosts::Sketch(d) => d.storage_cost(),
        }
    }

    /// Retrieval cost of replaying the delta (the edge cost `r_e`).
    pub fn retrieval_cost(&self) -> u64 {
        match self {
            DeltaCosts::Text(s) => s.retrieval_cost(&CostParams::default()),
            DeltaCosts::Sketch(d) => d.retrieval_cost(),
        }
    }
}

// ------------------------------------------------------------------ writers

/// A consumer of encoded byte runs: either an output buffer (encoding) or
/// an [`ObjectHasher`] (hashing the canonical encoding without
/// materializing it).
trait Emit {
    fn emit(&mut self, bytes: &[u8]);
}

impl Emit for Vec<u8> {
    fn emit(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

impl Emit for ObjectHasher {
    fn emit(&mut self, bytes: &[u8]) {
        self.update(bytes);
    }
}

fn put_u32(out: &mut impl Emit, v: u32) {
    out.emit(&v.to_le_bytes());
}

fn put_u64(out: &mut impl Emit, v: u64) {
    out.emit(&v.to_le_bytes());
}

fn put_bytes(out: &mut impl Emit, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.emit(b);
}

/// Emit a payload's canonical encoding, piecewise, into any sink.
fn emit_payload(p: &Payload, out: &mut impl Emit) {
    out.emit(&[PAYLOAD_MAGIC]);
    match p {
        Payload::Text(files) => {
            out.emit(&[TAG_TEXT]);
            put_u32(out, files.len() as u32);
            for f in files {
                put_bytes(out, f.path.as_bytes());
                put_u32(out, f.lines.len() as u32);
                for line in &f.lines {
                    put_bytes(out, line);
                }
            }
        }
        Payload::Sketch(chunks) => {
            out.emit(&[TAG_SKETCH]);
            put_u32(out, chunks.len() as u32);
            for &(id, size) in chunks {
                put_u64(out, id);
                put_u32(out, size);
            }
        }
    }
}

/// Encode a payload to its canonical bytes.
pub fn encode_payload(p: &Payload) -> Vec<u8> {
    let mut out = Vec::new();
    emit_payload(p, &mut out);
    out
}

/// The content address a payload's canonical encoding would hash to,
/// computed by streaming the encoding through an [`ObjectHasher`] — no
/// intermediate byte buffer. Always equal to
/// `hash_object(ObjectKind::Chunk, &encode_payload(p))`; this is what
/// reconstruction verifies decoded content against, sparing the hot read
/// path one full re-encode per version.
pub fn hash_payload(p: &Payload) -> ObjectId {
    let mut h = ObjectHasher::new(ObjectKind::Chunk);
    emit_payload(p, &mut h);
    h.finish()
}

/// Encode a text delta (sections must cover changed files only, in path
/// order, exactly as [`crate::dataset::Snapshot::delta_to`] walks them).
pub fn encode_text_delta(sections: &[FileDelta]) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(DELTA_MAGIC);
    out.push(TAG_TEXT);
    put_u32(&mut out, sections.len() as u32);
    for s in sections {
        put_bytes(&mut out, s.path.as_bytes());
        out.push(u8::from(s.dst_absent));
        put_u32(&mut out, s.ops.len() as u32);
        for op in &s.ops {
            match op {
                DeltaOp::Equal(len) => {
                    out.push(0);
                    put_u32(&mut out, *len);
                }
                DeltaOp::Delete(len) => {
                    out.push(1);
                    put_u32(&mut out, *len);
                }
                DeltaOp::Insert(lines) => {
                    out.push(2);
                    put_u32(&mut out, lines.len() as u32);
                    for line in lines {
                        put_bytes(&mut out, line);
                    }
                }
            }
        }
    }
    out
}

/// Encode a sketch delta: chunks removed from the source, chunks added by
/// the destination.
pub fn encode_sketch_delta(removed: &[u64], added: &[(u64, u32)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(DELTA_MAGIC);
    out.push(TAG_SKETCH);
    put_u32(&mut out, removed.len() as u32);
    put_u32(&mut out, added.len() as u32);
    for &id in removed {
        put_u64(&mut out, id);
    }
    for &(id, size) in added {
        put_u64(&mut out, id);
        put_u32(&mut out, size);
    }
    out
}

// ------------------------------------------------------------------ readers

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn err(&self, what: &str) -> StoreError {
        StoreError::InvalidFormat {
            detail: format!("truncated or malformed record: {what} at byte {}", self.pos),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.err(what))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        let end = self.pos + 4;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err(what))?;
        self.pos = end;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        let end = self.pos + 8;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err(what))?;
        self.pos = end;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self, what: &str) -> Result<&'a [u8], StoreError> {
        let len = self.u32(what)? as usize;
        let end = self.pos + len;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err(what))?;
        self.pos = end;
        Ok(s)
    }

    fn finish(&self, what: &str) -> Result<(), StoreError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(StoreError::InvalidFormat {
                detail: format!(
                    "{what}: {} trailing bytes after byte {}",
                    self.bytes.len() - self.pos,
                    self.pos
                ),
            })
        }
    }
}

/// Decode payload bytes.
pub fn decode_payload(bytes: &[u8]) -> Result<Payload, StoreError> {
    let mut r = Reader::new(bytes);
    if r.u8("payload magic")? != PAYLOAD_MAGIC {
        return Err(StoreError::InvalidFormat {
            detail: "not a payload object".into(),
        });
    }
    let payload = match r.u8("payload tag")? {
        TAG_TEXT => {
            let n_files = r.u32("file count")?;
            let mut files = Vec::with_capacity(n_files as usize);
            for _ in 0..n_files {
                let path = String::from_utf8(r.bytes("path")?.to_vec()).map_err(|_| {
                    StoreError::InvalidFormat {
                        detail: "file path is not UTF-8".into(),
                    }
                })?;
                let n_lines = r.u32("line count")?;
                let mut lines = Vec::with_capacity(n_lines as usize);
                for _ in 0..n_lines {
                    lines.push(r.bytes("line")?.to_vec());
                }
                files.push(TextFile { path, lines });
            }
            Payload::Text(files)
        }
        TAG_SKETCH => {
            let n = r.u32("chunk count")?;
            let mut chunks = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let id = r.u64("chunk id")?;
                let size = r.u32("chunk size")?;
                chunks.push((id, size));
            }
            Payload::Sketch(chunks)
        }
        other => {
            return Err(StoreError::InvalidFormat {
                detail: format!("unknown payload tag {other}"),
            })
        }
    };
    r.finish("payload")?;
    Ok(payload)
}

enum DecodedDelta {
    Text(Vec<FileDelta>),
    Sketch {
        removed: Vec<u64>,
        added: Vec<(u64, u32)>,
    },
}

fn decode_delta(bytes: &[u8]) -> Result<DecodedDelta, StoreError> {
    let mut r = Reader::new(bytes);
    if r.u8("delta magic")? != DELTA_MAGIC {
        return Err(StoreError::InvalidFormat {
            detail: "not a delta object".into(),
        });
    }
    let decoded = match r.u8("delta tag")? {
        TAG_TEXT => {
            let n_sections = r.u32("section count")?;
            let mut sections = Vec::with_capacity(n_sections as usize);
            for _ in 0..n_sections {
                let path = String::from_utf8(r.bytes("path")?.to_vec()).map_err(|_| {
                    StoreError::InvalidFormat {
                        detail: "section path is not UTF-8".into(),
                    }
                })?;
                let dst_absent = r.u8("flags")? != 0;
                let n_ops = r.u32("op count")?;
                let mut ops = Vec::with_capacity(n_ops as usize);
                for _ in 0..n_ops {
                    ops.push(match r.u8("op kind")? {
                        0 => DeltaOp::Equal(r.u32("equal len")?),
                        1 => DeltaOp::Delete(r.u32("delete len")?),
                        2 => {
                            let n = r.u32("insert len")?;
                            let mut lines = Vec::with_capacity(n as usize);
                            for _ in 0..n {
                                lines.push(r.bytes("inserted line")?.to_vec());
                            }
                            DeltaOp::Insert(lines)
                        }
                        other => {
                            return Err(StoreError::InvalidFormat {
                                detail: format!("unknown op kind {other}"),
                            })
                        }
                    });
                }
                sections.push(FileDelta {
                    path,
                    dst_absent,
                    ops,
                });
            }
            DecodedDelta::Text(sections)
        }
        TAG_SKETCH => {
            let n_removed = r.u32("removed count")?;
            let n_added = r.u32("added count")?;
            let mut removed = Vec::with_capacity(n_removed as usize);
            for _ in 0..n_removed {
                removed.push(r.u64("removed id")?);
            }
            let mut added = Vec::with_capacity(n_added as usize);
            for _ in 0..n_added {
                added.push((r.u64("added id")?, r.u32("added size")?));
            }
            DecodedDelta::Sketch { removed, added }
        }
        other => {
            return Err(StoreError::InvalidFormat {
                detail: format!("unknown delta tag {other}"),
            })
        }
    };
    r.finish("delta")?;
    Ok(decoded)
}

fn costs_of(decoded: &DecodedDelta) -> DeltaCosts {
    match decoded {
        DecodedDelta::Text(sections) => {
            let mut script = EditScript::default();
            for s in sections {
                for op in &s.ops {
                    match op {
                        DeltaOp::Equal(_) => {}
                        DeltaOp::Delete(len) => {
                            script.ops += 1;
                            script.deleted_bytes += u64::from(*len);
                        }
                        DeltaOp::Insert(lines) => {
                            script.ops += 1;
                            script.inserted_bytes +=
                                lines.iter().map(|l| l.len() as u64 + 1).sum::<u64>();
                        }
                    }
                }
            }
            DeltaCosts::Text(script)
        }
        DecodedDelta::Sketch { removed, added } => DeltaCosts::Sketch(SketchDelta {
            added_bytes: added.iter().map(|&(_, s)| u64::from(s)).sum(),
            added_chunks: added.len() as u64,
            removed_chunks: removed.len() as u64,
        }),
    }
}

/// Decode a delta's measured costs without applying it.
pub fn delta_costs(bytes: &[u8]) -> Result<DeltaCosts, StoreError> {
    Ok(costs_of(&decode_delta(bytes)?))
}

/// Apply encoded delta bytes to a source payload, returning the
/// reconstructed destination payload and the delta's measured costs.
pub fn apply_delta(src: &Payload, delta: &[u8]) -> Result<(Payload, DeltaCosts), StoreError> {
    let decoded = decode_delta(delta)?;
    let costs = costs_of(&decoded);
    let dst = match (&decoded, src) {
        (DecodedDelta::Text(sections), Payload::Text(files)) => {
            let mut files = files.clone();
            for section in sections {
                let src_lines: &[Vec<u8>] = files
                    .binary_search_by(|f| f.path.as_str().cmp(&section.path))
                    .map(|i| files[i].lines.as_slice())
                    .unwrap_or(&[]);
                let mut out = Vec::new();
                let mut cursor = 0usize;
                for op in &section.ops {
                    match op {
                        DeltaOp::Equal(len) => {
                            let end = cursor + *len as usize;
                            let run = src_lines.get(cursor..end).ok_or_else(|| {
                                StoreError::InvalidFormat {
                                    detail: format!(
                                        "delta for {} copies past the source file",
                                        section.path
                                    ),
                                }
                            })?;
                            out.extend(run.iter().cloned());
                            cursor = end;
                        }
                        DeltaOp::Delete(len) => cursor += *len as usize,
                        DeltaOp::Insert(lines) => out.extend(lines.iter().cloned()),
                    }
                }
                if cursor != src_lines.len() {
                    return Err(StoreError::InvalidFormat {
                        detail: format!(
                            "delta for {} covers {cursor} of {} source lines",
                            section.path,
                            src_lines.len()
                        ),
                    });
                }
                match files.binary_search_by(|f| f.path.as_str().cmp(&section.path)) {
                    Ok(i) if section.dst_absent => {
                        files.remove(i);
                    }
                    Ok(i) => files[i].lines = out,
                    Err(_) if section.dst_absent => {}
                    Err(i) => files.insert(
                        i,
                        TextFile {
                            path: section.path.clone(),
                            lines: out,
                        },
                    ),
                }
            }
            Payload::Text(files)
        }
        (DecodedDelta::Sketch { removed, added }, Payload::Sketch(chunks)) => {
            let mut map: std::collections::BTreeMap<u64, u32> = chunks.iter().copied().collect();
            for id in removed {
                if map.remove(id).is_none() {
                    return Err(StoreError::InvalidFormat {
                        detail: format!("delta removes chunk {id} absent from the source"),
                    });
                }
            }
            for &(id, size) in added {
                map.insert(id, size);
            }
            Payload::Sketch(map.into_iter().collect())
        }
        _ => {
            return Err(StoreError::InvalidFormat {
                detail: "delta flavor does not match the source payload".into(),
            })
        }
    };
    Ok((dst, costs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text_payload() -> Payload {
        Payload::Text(vec![
            TextFile {
                path: "a.txt".into(),
                lines: vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()],
            },
            TextFile {
                path: "b.txt".into(),
                lines: vec![b"solo".to_vec()],
            },
        ])
    }

    #[test]
    fn payload_roundtrip_text_and_sketch() {
        for p in [text_payload(), Payload::Sketch(vec![(3, 100), (9, 50)])] {
            let bytes = encode_payload(&p);
            assert_eq!(decode_payload(&bytes).expect("decode"), p);
        }
        assert_eq!(text_payload().content_size(), 4 + 4 + 6 + 5);
        assert_eq!(Payload::Sketch(vec![(3, 100), (9, 50)]).content_size(), 150);
    }

    #[test]
    fn text_delta_applies_and_prices() {
        let src = text_payload();
        // a.txt: keep "one", delete "two", insert "TWO!", keep "three";
        // b.txt removed entirely; c.txt created.
        let delta = encode_text_delta(&[
            FileDelta {
                path: "a.txt".into(),
                dst_absent: false,
                ops: vec![
                    DeltaOp::Equal(1),
                    DeltaOp::Delete(1),
                    DeltaOp::Insert(vec![b"TWO!".to_vec()]),
                    DeltaOp::Equal(1),
                ],
            },
            FileDelta {
                path: "b.txt".into(),
                dst_absent: true,
                ops: vec![DeltaOp::Delete(1)],
            },
            FileDelta {
                path: "c.txt".into(),
                dst_absent: false,
                ops: vec![DeltaOp::Insert(vec![b"new".to_vec()])],
            },
        ]);
        let (dst, costs) = apply_delta(&src, &delta).expect("apply");
        let Payload::Text(files) = &dst else {
            panic!("text payload expected")
        };
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].path, "a.txt");
        assert_eq!(
            files[0].lines,
            vec![b"one".to_vec(), b"TWO!".to_vec(), b"three".to_vec()]
        );
        assert_eq!(files[1].path, "c.txt");
        let DeltaCosts::Text(script) = &costs else {
            panic!("text costs expected")
        };
        assert_eq!(script.ops, 4); // delete, insert, delete, insert
        assert_eq!(script.inserted_bytes, 5 + 4);
        assert_eq!(delta_costs(&delta).expect("decode"), costs);
    }

    #[test]
    fn sketch_delta_applies_and_prices() {
        let src = Payload::Sketch(vec![(1, 10), (2, 20), (3, 30)]);
        let delta = encode_sketch_delta(&[2], &[(4, 40), (5, 50)]);
        let (dst, costs) = apply_delta(&src, &delta).expect("apply");
        assert_eq!(
            dst,
            Payload::Sketch(vec![(1, 10), (3, 30), (4, 40), (5, 50)])
        );
        let DeltaCosts::Sketch(d) = &costs else {
            panic!("sketch costs expected")
        };
        assert_eq!(d.added_bytes, 90);
        assert_eq!(d.added_chunks, 2);
        assert_eq!(d.removed_chunks, 1);
        assert_eq!(costs.storage_cost(), 90 + 12 * 3);
    }

    #[test]
    fn hash_payload_equals_hash_of_encoding() {
        use crate::store::hash_object;
        for p in [
            text_payload(),
            Payload::Text(vec![]),
            Payload::Sketch(vec![(3, 100), (9, 50)]),
            Payload::Sketch(vec![]),
        ] {
            assert_eq!(
                hash_payload(&p),
                hash_object(ObjectKind::Chunk, &encode_payload(&p)),
                "streamed hash must equal the hash of the materialized encoding for {p:?}"
            );
        }
    }

    #[test]
    fn malformed_records_are_typed_errors() {
        assert!(matches!(
            decode_payload(b"garbage"),
            Err(StoreError::InvalidFormat { .. })
        ));
        let mut bytes = encode_payload(&text_payload());
        bytes.truncate(bytes.len() - 2);
        assert!(matches!(
            decode_payload(&bytes),
            Err(StoreError::InvalidFormat { .. })
        ));
        let sketchy = encode_sketch_delta(&[99], &[]);
        assert!(matches!(
            apply_delta(&Payload::Sketch(vec![(1, 1)]), &sketchy),
            Err(StoreError::InvalidFormat { .. })
        ));
    }
}
