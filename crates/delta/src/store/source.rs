//! From synthesized corpora to storable bytes.
//!
//! A [`VersionSource`] is anything that can produce, for every version of a
//! graph, (a) the version's canonical [`Payload`] and (b) an encoded,
//! applyable delta between any two versions. The executor in `dsv_core`
//! ingests plans through this trait: materialized nodes become payload
//! chunks, delta nodes become encoded deltas, and reconstruction is
//! verified against the payload hashes.
//!
//! [`CorpusContent`] is the built-in source: the full content retained by
//! the evolution simulator ([`crate::evolve`]) — interned snapshots for
//! text corpora, chunk sketches for sketch corpora. Deltas are priced by
//! exactly the models that priced the graph edges at synthesis time, so a
//! plan's predicted costs and the measured costs of its stored bytes agree
//! bit for bit.

use super::codec::{
    self, encode_sketch_delta, encode_text_delta, DeltaOp, FileDelta, Payload, TextFile,
};
use crate::chunks::ChunkSketch;
use crate::dataset::{LineStore, Snapshot};
use crate::myers::{self, DiffOp};

/// A provider of version payloads and inter-version deltas.
pub trait VersionSource {
    /// Number of versions (must equal the graph's node count).
    fn version_count(&self) -> usize;

    /// The canonical content of version `v`.
    fn payload(&self, v: u32) -> Payload;

    /// Encoded delta bytes transforming version `src` into version `dst`.
    /// Must be applyable via [`codec::apply_delta`] and must decode to the
    /// same costs the corresponding graph edge carries (when one exists).
    fn delta(&self, src: u32, dst: u32) -> Vec<u8>;

    /// The canonical encoded bytes of version `v`'s payload.
    fn payload_bytes(&self, v: u32) -> Vec<u8> {
        codec::encode_payload(&self.payload(v))
    }
}

/// Retained content of a synthesized corpus: one entry per graph node.
#[derive(Clone, Debug)]
pub enum CorpusContent {
    /// Text corpora: the shared line store plus one snapshot per version.
    Text {
        /// Interned line table shared by all snapshots.
        lines: LineStore,
        /// Per-version snapshots, indexed by node id.
        snapshots: Vec<Snapshot>,
    },
    /// Sketch corpora: one chunk sketch per version.
    Sketch {
        /// Per-version sketches, indexed by node id.
        sketches: Vec<ChunkSketch>,
    },
}

impl CorpusContent {
    /// The per-version chunk sketches, when this is sketch-mode content
    /// (what the Erdős–Rényi construction consumes).
    pub fn sketches(&self) -> Option<&[ChunkSketch]> {
        match self {
            CorpusContent::Sketch { sketches } => Some(sketches),
            CorpusContent::Text { .. } => None,
        }
    }
}

fn snapshot_payload(snap: &Snapshot, lines: &LineStore) -> Payload {
    Payload::Text(
        snap.files
            .iter()
            .map(|(path, ids)| TextFile {
                path: path.clone(),
                lines: ids
                    .iter()
                    .map(|&id| lines.text(id).as_bytes().to_vec())
                    .collect(),
            })
            .collect(),
    )
}

/// Mirror of [`Snapshot::delta_to`], producing applyable bytes instead of
/// just costs: same path union, same per-file Myers diffs, same skipping of
/// unchanged files — so the decoded costs equal the edge costs.
fn snapshot_delta(a: &Snapshot, b: &Snapshot, lines: &LineStore) -> Vec<u8> {
    let empty: Vec<u32> = Vec::new();
    let mut paths: Vec<&String> = a.files.keys().chain(b.files.keys()).collect();
    paths.sort();
    paths.dedup();
    let mut sections = Vec::new();
    for path in paths {
        let src = a.files.get(path).unwrap_or(&empty);
        let dst = b.files.get(path).unwrap_or(&empty);
        if src == dst {
            continue;
        }
        let ops = myers::diff(src, dst)
            .into_iter()
            .map(|op| match op {
                DiffOp::Equal { len } => DeltaOp::Equal(len as u32),
                DiffOp::Delete { len } => DeltaOp::Delete(len as u32),
                DiffOp::Insert { start, len } => DeltaOp::Insert(
                    dst[start..start + len]
                        .iter()
                        .map(|&id| lines.text(id).as_bytes().to_vec())
                        .collect(),
                ),
            })
            .collect();
        sections.push(FileDelta {
            path: path.clone(),
            dst_absent: !b.files.contains_key(path),
            ops,
        });
    }
    encode_text_delta(&sections)
}

/// Mirror of [`ChunkSketch::delta_to`]: the symmetric difference of the two
/// manifests as remove/add records.
fn sketch_delta(a: &ChunkSketch, b: &ChunkSketch) -> Vec<u8> {
    let mut removed = Vec::new();
    let mut added = Vec::new();
    let mut it_a = a.iter().peekable();
    let mut it_b = b.iter().peekable();
    loop {
        match (it_a.peek(), it_b.peek()) {
            (Some(&(ka, _)), Some(&(kb, sb))) => {
                if ka == kb {
                    it_a.next();
                    it_b.next();
                } else if ka < kb {
                    removed.push(ka);
                    it_a.next();
                } else {
                    added.push((kb, sb));
                    it_b.next();
                }
            }
            (Some(&(ka, _)), None) => {
                removed.push(ka);
                it_a.next();
            }
            (None, Some(&(kb, sb))) => {
                added.push((kb, sb));
                it_b.next();
            }
            (None, None) => break,
        }
    }
    encode_sketch_delta(&removed, &added)
}

impl VersionSource for CorpusContent {
    fn version_count(&self) -> usize {
        match self {
            CorpusContent::Text { snapshots, .. } => snapshots.len(),
            CorpusContent::Sketch { sketches } => sketches.len(),
        }
    }

    fn payload(&self, v: u32) -> Payload {
        match self {
            CorpusContent::Text { lines, snapshots } => {
                snapshot_payload(&snapshots[v as usize], lines)
            }
            CorpusContent::Sketch { sketches } => {
                Payload::Sketch(sketches[v as usize].iter().collect())
            }
        }
    }

    fn delta(&self, src: u32, dst: u32) -> Vec<u8> {
        match self {
            CorpusContent::Text { lines, snapshots } => {
                snapshot_delta(&snapshots[src as usize], &snapshots[dst as usize], lines)
            }
            CorpusContent::Sketch { sketches } => {
                sketch_delta(&sketches[src as usize], &sketches[dst as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::CostParams;
    use crate::store::codec::{apply_delta, delta_costs, DeltaCosts};

    fn text_content() -> CorpusContent {
        let mut lines = LineStore::new();
        let mut s0 = Snapshot::default();
        s0.files.insert(
            "f.txt".into(),
            vec![lines.intern("alpha"), lines.intern("beta")],
        );
        let mut s1 = Snapshot::default();
        s1.files.insert(
            "f.txt".into(),
            vec![
                lines.intern("alpha"),
                lines.intern("gamma"),
                lines.intern("beta"),
            ],
        );
        CorpusContent::Text {
            lines,
            snapshots: vec![s0, s1],
        }
    }

    #[test]
    fn text_delta_reconstructs_and_matches_cost_model() {
        let content = text_content();
        let (s0, s1) = match &content {
            CorpusContent::Text { lines, snapshots } => {
                ((snapshots[0].clone(), lines.clone()), snapshots[1].clone())
            }
            _ => unreachable!(),
        };
        let delta = content.delta(0, 1);
        let (dst, costs) = apply_delta(&content.payload(0), &delta).expect("apply");
        assert_eq!(dst, content.payload(1));
        // Decoded costs equal the delta_to pricing used at synthesis time.
        let script = s0.0.delta_to(&s1, &s0.1);
        let p = CostParams::default();
        assert_eq!(costs.storage_cost(), script.storage_cost(&p));
        assert_eq!(costs.retrieval_cost(), script.retrieval_cost(&p));
    }

    #[test]
    fn sketch_delta_reconstructs_and_matches_cost_model() {
        let mut a = ChunkSketch::new();
        a.insert(1, 100);
        a.insert(2, 200);
        let mut b = ChunkSketch::new();
        b.insert(2, 200);
        b.insert(3, 300);
        let content = CorpusContent::Sketch {
            sketches: vec![a.clone(), b.clone()],
        };
        let delta = content.delta(0, 1);
        let (dst, costs) = apply_delta(&content.payload(0), &delta).expect("apply");
        assert_eq!(dst, content.payload(1));
        let priced = a.delta_to(&b);
        assert_eq!(costs.storage_cost(), priced.storage_cost());
        assert_eq!(costs.retrieval_cost(), priced.retrieval_cost());
        assert!(matches!(
            delta_costs(&delta).expect("decode"),
            DeltaCosts::Sketch(_)
        ));
    }
}
