//! Deterministic fault injection over any [`Store`] backend.
//!
//! [`FaultStore`] is a decorator: it wraps an inner store and injects
//! faults on the way through, driven entirely by a seeded [`FaultPlan`] —
//! no OS randomness, no wall clock — so a failing schedule replays
//! byte-identically from its seed.
//!
//! Four probabilistic fault families cover the failure modes a real
//! storage tier exhibits:
//!
//! * **transient read errors** — a read fails once with [`StoreError::Io`]
//!   and succeeds on retry (a flaky disk, a dropped connection);
//! * **permanent read errors** — a read fails with [`StoreError::Io`] on
//!   every attempt until the object is [`Store::repair`]ed (a lost sector);
//! * **bit flips** — at-rest corruption. Both real backends hash-verify
//!   every read, so flipped bytes can never be *served*; what a caller
//!   observes is the verification failure, which is exactly what the
//!   decorator injects: [`StoreError::Corrupt`], cleared by repair;
//! * **put failures** — the write is rejected with [`StoreError::Io`] and
//!   the inner store is left untouched (no reference is taken).
//!
//! Probabilistic read faults are decided *per object id* (a hash of the
//! seed and the id), not per call: which objects are faulty is a fixed,
//! seed-determined subset, independent of read order — so the injected
//! fault set is reproducible even under the parallel checkout walker.
//!
//! On top of the probabilities sit two op-trace triggers, precise to the
//! operation count: [`FaultPlan::fail_nth`] fails exactly the Nth
//! operation of a kind ("fail exactly the 2nd gc"), and
//! [`FaultPlan::crash_after`] poisons the decorator at the Nth operation —
//! every subsequent call fails, modeling a process that must restart.
//! (For true power-loss simulation inside `PackStore`'s write sites — torn
//! appends, unrenamed tmp files — use
//! [`PackStore::arm_crash`](super::PackStore::arm_crash), which tears real
//! bytes; `crash_after` models the process dying, not the disk.)

use super::{splitmix64, GcStats, ObjectId, ObjectKind, ObjectMeta, Store, StoreError};
use std::borrow::Cow;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// The operation kinds a [`FaultPlan`] can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// [`Store::put`].
    Put,
    /// [`Store::get`] / [`Store::get_ref`] (counted together).
    Get,
    /// [`Store::retain`].
    Retain,
    /// [`Store::release`].
    Release,
    /// [`Store::gc`].
    Gc,
    /// [`Store::flush`].
    Flush,
}

/// A seeded, declarative description of which faults to inject.
///
/// The default plan injects nothing; build one with [`FaultPlan::seeded`]
/// and the `with_*` / [`fail_nth`](Self::fail_nth) /
/// [`crash_after`](Self::crash_after) builders. All probabilities are in
/// `[0, 1]`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient_get: f64,
    permanent_get: f64,
    bit_flip: f64,
    put_fail: f64,
    fail_nth: Vec<(FaultOp, u64)>,
    crash_after: Option<(FaultOp, u64)>,
}

// Per-family salts keep the three per-object decisions independent.
const SALT_TRANSIENT: u64 = 0x7261_6e73_6965_6e74;
const SALT_PERMANENT: u64 = 0x7065_726d_616e_656e;
const SALT_BIT_FLIP: u64 = 0x6269_7466_6c69_7021;
const SALT_PUT: u64 = 0x7075_7466_6169_6c21;

/// Map a 64-bit hash onto `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The seed-determined draw for one (fault family, object) pair.
fn object_draw(seed: u64, salt: u64, id: ObjectId) -> f64 {
    unit(splitmix64(
        seed ^ salt ^ splitmix64(id.0 ^ id.1.rotate_left(32)),
    ))
}

impl FaultPlan {
    /// A plan injecting nothing (probabilities zero, no triggers), with a
    /// seed for later builders.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// A fully transparent plan — the decorator forwards everything.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Fraction of objects whose *first* read fails with a transient
    /// [`StoreError::Io`]; the retry succeeds.
    pub fn with_transient_get(mut self, p: f64) -> Self {
        self.transient_get = p;
        self
    }

    /// Fraction of objects every read of which fails with
    /// [`StoreError::Io`] until the object is repaired.
    pub fn with_permanent_get(mut self, p: f64) -> Self {
        self.permanent_get = p;
        self
    }

    /// Fraction of objects whose reads fail with [`StoreError::Corrupt`]
    /// (the observable effect of an at-rest bit flip behind hash
    /// verification) until the object is repaired.
    pub fn with_bit_flip(mut self, p: f64) -> Self {
        self.bit_flip = p;
        self
    }

    /// Probability that any given [`Store::put`] fails with
    /// [`StoreError::Io`], leaving the inner store untouched.
    pub fn with_put_failures(mut self, p: f64) -> Self {
        self.put_fail = p;
        self
    }

    /// Fail exactly the `nth` (1-based) operation of kind `op` with a
    /// targeted [`StoreError::Io`]. May be called multiple times to arm
    /// several triggers.
    pub fn fail_nth(mut self, op: FaultOp, nth: u64) -> Self {
        self.fail_nth.push((op, nth));
        self
    }

    /// Poison the decorator at the `nth` (1-based) operation of kind `op`:
    /// that call and every call after it fail with [`StoreError::Io`],
    /// modeling a process crash. The inner store is left exactly as it was
    /// — recover it with [`FaultStore::into_inner`].
    pub fn crash_after(mut self, op: FaultOp, nth: u64) -> Self {
        self.crash_after = Some((op, nth));
        self
    }

    fn nth_matches(&self, op: FaultOp, n: u64) -> bool {
        self.fail_nth.iter().any(|&(o, nth)| o == op && nth == n)
    }

    fn crash_matches(&self, op: FaultOp, n: u64) -> bool {
        self.crash_after == Some((op, n))
    }
}

/// Monotonic counters of what a [`FaultStore`] saw and injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// `put` calls observed.
    pub puts: u64,
    /// `get`/`get_ref` calls observed.
    pub gets: u64,
    /// `retain` calls observed.
    pub retains: u64,
    /// `release` calls observed.
    pub releases: u64,
    /// `gc` calls observed.
    pub gcs: u64,
    /// `flush` calls observed.
    pub flushes: u64,
    /// Transient read errors injected.
    pub injected_transient: u64,
    /// Permanent read errors injected.
    pub injected_permanent: u64,
    /// Corruption errors injected.
    pub injected_corrupt: u64,
    /// Put failures injected.
    pub injected_put_failures: u64,
    /// [`FaultPlan::fail_nth`] triggers fired.
    pub injected_targeted: u64,
    /// Whether [`FaultPlan::crash_after`] fired (0 or 1).
    pub crashes: u64,
    /// [`Store::repair`] calls forwarded.
    pub repairs: u64,
}

impl FaultStats {
    /// Total read faults injected (transient + permanent + corrupt).
    pub fn injected_reads(&self) -> u64 {
        self.injected_transient + self.injected_permanent + self.injected_corrupt
    }
}

#[derive(Debug, Default)]
struct FaultState {
    /// Objects whose transient fault already fired — their next read goes
    /// through (fail-then-succeed).
    tripped: BTreeSet<ObjectId>,
    /// Repaired objects: all probabilistic marks are cleared for them.
    healed: BTreeSet<ObjectId>,
    /// Objects corrupted explicitly via [`FaultStore::corrupt_object`].
    forced_corrupt: BTreeSet<ObjectId>,
    poisoned: bool,
    stats: FaultStats,
}

/// A fault-injecting decorator over any [`Store`]. See the module docs.
///
/// Metadata reads (`meta`, `contains`, `object_count`, `stored_bytes`)
/// pass through untouched — faults target the byte paths, which is where
/// integrity lives.
#[derive(Debug)]
pub struct FaultStore<S: Store> {
    inner: S,
    plan: FaultPlan,
    /// Interior mutability: `get`/`get_ref` take `&self` but must count
    /// ops and record fired transients.
    state: Mutex<FaultState>,
}

fn injected_io(detail: &'static str) -> StoreError {
    StoreError::Io {
        op: "fault-injection",
        path: "<fault-store>".into(),
        detail: detail.into(),
    }
}

impl<S: Store> FaultStore<S> {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultStore {
            inner,
            plan,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// Wrap `inner` with a no-fault plan (useful for ingesting cleanly and
    /// arming faults afterwards with [`set_plan`](Self::set_plan)).
    pub fn transparent(inner: S) -> Self {
        Self::new(inner, FaultPlan::none())
    }

    /// Replace the fault plan. Counters and already-fired transients are
    /// kept; repaired objects stay healed.
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.state.lock().expect("fault state lock").stats
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped store, mutably (bypasses fault injection).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwrap, discarding the fault machinery.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Corrupt one stored object: every read of `id` fails with
    /// [`StoreError::Corrupt`] until the object is repaired. Returns
    /// `false` if the object is absent. This is the shared
    /// corruption-injection API for both backends (it replaces the old
    /// `MemStore::corrupt_object` backdoor).
    pub fn corrupt_object(&mut self, id: ObjectId) -> bool {
        if !self.inner.contains(id) {
            return false;
        }
        let mut st = self.state.lock().expect("fault state lock");
        st.forced_corrupt.insert(id);
        st.healed.remove(&id);
        true
    }

    /// Shared entry bookkeeping for every operation: count it, then fire
    /// the op-trace triggers. Returns the 1-based count of this op.
    fn op_gate(&self, op: FaultOp, st: &mut FaultState) -> Result<u64, StoreError> {
        if st.poisoned {
            return Err(injected_io("store poisoned by injected crash"));
        }
        let count = match op {
            FaultOp::Put => {
                st.stats.puts += 1;
                st.stats.puts
            }
            FaultOp::Get => {
                st.stats.gets += 1;
                st.stats.gets
            }
            FaultOp::Retain => {
                st.stats.retains += 1;
                st.stats.retains
            }
            FaultOp::Release => {
                st.stats.releases += 1;
                st.stats.releases
            }
            FaultOp::Gc => {
                st.stats.gcs += 1;
                st.stats.gcs
            }
            FaultOp::Flush => {
                st.stats.flushes += 1;
                st.stats.flushes
            }
        };
        if self.plan.crash_matches(op, count) {
            st.poisoned = true;
            st.stats.crashes += 1;
            return Err(injected_io("injected crash"));
        }
        if self.plan.nth_matches(op, count) {
            st.stats.injected_targeted += 1;
            return Err(injected_io("injected targeted failure"));
        }
        Ok(count)
    }

    /// The read-path fault decision for `id`. `Ok(())` means the read may
    /// proceed against the inner store.
    fn read_gate(&self, id: ObjectId) -> Result<(), StoreError> {
        let mut st = self.state.lock().expect("fault state lock");
        self.op_gate(FaultOp::Get, &mut st)?;
        // Absent objects surface the inner store's own Missing — a fault
        // on an object that does not exist would be a phantom.
        if !self.inner.contains(id) || st.healed.contains(&id) {
            return Ok(());
        }
        if st.forced_corrupt.contains(&id)
            || object_draw(self.plan.seed, SALT_BIT_FLIP, id) < self.plan.bit_flip
        {
            st.stats.injected_corrupt += 1;
            return Err(StoreError::Corrupt {
                id,
                detail: "injected bit flip".into(),
            });
        }
        if object_draw(self.plan.seed, SALT_PERMANENT, id) < self.plan.permanent_get {
            st.stats.injected_permanent += 1;
            return Err(injected_io("injected permanent read error"));
        }
        if object_draw(self.plan.seed, SALT_TRANSIENT, id) < self.plan.transient_get
            && st.tripped.insert(id)
        {
            st.stats.injected_transient += 1;
            return Err(injected_io("injected transient read error"));
        }
        Ok(())
    }
}

impl<S: Store> Store for FaultStore<S> {
    fn put(&mut self, kind: ObjectKind, bytes: &[u8]) -> Result<ObjectId, StoreError> {
        {
            let mut st = self.state.lock().expect("fault state lock");
            let count = self.op_gate(FaultOp::Put, &mut st)?;
            // Put failures are drawn per call (puts are sequential — the
            // trait takes &mut self — so the op count is a stable clock).
            if unit(splitmix64(self.plan.seed ^ SALT_PUT ^ count)) < self.plan.put_fail {
                st.stats.injected_put_failures += 1;
                return Err(injected_io("injected put failure"));
            }
        }
        self.inner.put(kind, bytes)
    }

    fn get(&self, id: ObjectId) -> Result<Vec<u8>, StoreError> {
        self.read_gate(id)?;
        self.inner.get(id)
    }

    fn get_ref(&self, id: ObjectId) -> Result<Cow<'_, [u8]>, StoreError> {
        self.read_gate(id)?;
        self.inner.get_ref(id)
    }

    fn meta(&self, id: ObjectId) -> Option<ObjectMeta> {
        self.inner.meta(id)
    }

    fn retain(&mut self, id: ObjectId) -> Result<(), StoreError> {
        {
            let mut st = self.state.lock().expect("fault state lock");
            self.op_gate(FaultOp::Retain, &mut st)?;
        }
        self.inner.retain(id)
    }

    fn release(&mut self, id: ObjectId) -> Result<(), StoreError> {
        {
            let mut st = self.state.lock().expect("fault state lock");
            self.op_gate(FaultOp::Release, &mut st)?;
        }
        self.inner.release(id)
    }

    fn gc(&mut self) -> Result<GcStats, StoreError> {
        {
            let mut st = self.state.lock().expect("fault state lock");
            self.op_gate(FaultOp::Gc, &mut st)?;
        }
        self.inner.gc()
    }

    fn object_count(&self) -> usize {
        self.inner.object_count()
    }

    fn stored_bytes(&self) -> u64 {
        self.inner.stored_bytes()
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        {
            let mut st = self.state.lock().expect("fault state lock");
            self.op_gate(FaultOp::Flush, &mut st)?;
        }
        self.inner.flush()
    }

    fn repair(&mut self, id: ObjectId, kind: ObjectKind, bytes: &[u8]) -> Result<(), StoreError> {
        // Repair is the recovery path: it is never fault-injected, and it
        // clears every mark on the object before forwarding, so a repaired
        // object reads cleanly from then on.
        {
            let mut st = self.state.lock().expect("fault state lock");
            if st.poisoned {
                return Err(injected_io("store poisoned by injected crash"));
            }
            st.tripped.remove(&id);
            st.forced_corrupt.remove(&id);
            st.healed.insert(id);
            st.stats.repairs += 1;
        }
        self.inner.repair(id, kind, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{hash_object, MemStore};
    use super::*;

    #[test]
    fn transparent_plan_forwards_everything() {
        let mut s = FaultStore::transparent(MemStore::new());
        let id = s.put(ObjectKind::Chunk, b"clean").expect("put");
        assert_eq!(s.get(id).expect("get"), b"clean");
        assert_eq!(s.get_ref(id).expect("get_ref").as_ref(), b"clean");
        s.retain(id).expect("retain");
        s.release(id).expect("release");
        s.release(id).expect("release");
        assert_eq!(s.gc().expect("gc").collected_objects, 1);
        let stats = s.stats();
        assert_eq!(stats.puts, 1);
        assert_eq!(stats.gets, 2);
        assert_eq!(stats.injected_reads(), 0);
    }

    #[test]
    fn transient_faults_fail_exactly_once_per_object() {
        let mut s = FaultStore::new(
            MemStore::new(),
            FaultPlan::seeded(7).with_transient_get(1.0),
        );
        let a = s.put(ObjectKind::Chunk, b"alpha").expect("put");
        let b = s.put(ObjectKind::Chunk, b"beta").expect("put");
        for id in [a, b] {
            assert!(matches!(s.get(id), Err(StoreError::Io { .. })));
            assert!(s.get(id).is_ok(), "retry must succeed");
            assert!(s.get(id).is_ok());
        }
        assert_eq!(s.stats().injected_transient, 2);
    }

    #[test]
    fn permanent_and_corrupt_marks_clear_on_repair() {
        let mut s = FaultStore::new(MemStore::new(), FaultPlan::seeded(3).with_bit_flip(1.0));
        let id = s.put(ObjectKind::Chunk, b"victim").expect("put");
        assert!(matches!(s.get(id), Err(StoreError::Corrupt { .. })));
        assert!(matches!(s.get(id), Err(StoreError::Corrupt { .. })));
        let rc_before = s.meta(id).expect("meta").refcount;
        s.repair(id, ObjectKind::Chunk, b"victim").expect("repair");
        assert_eq!(s.get(id).expect("healed"), b"victim");
        assert_eq!(s.meta(id).expect("meta").refcount, rc_before);
        assert_eq!(s.stats().repairs, 1);
    }

    #[test]
    fn targeted_nth_gc_fails_and_only_that_one() {
        let mut s = FaultStore::new(
            MemStore::new(),
            FaultPlan::seeded(0).fail_nth(FaultOp::Gc, 2),
        );
        s.gc().expect("gc 1");
        assert!(matches!(s.gc(), Err(StoreError::Io { .. })), "gc 2 fails");
        s.gc().expect("gc 3");
        assert_eq!(s.stats().injected_targeted, 1);
    }

    #[test]
    fn crash_after_poisons_every_later_op() {
        let mut s = FaultStore::new(
            MemStore::new(),
            FaultPlan::seeded(0).crash_after(FaultOp::Get, 2),
        );
        let id = s.put(ObjectKind::Chunk, b"bytes").expect("put");
        assert!(s.get(id).is_ok());
        assert!(matches!(s.get(id), Err(StoreError::Io { .. })));
        assert!(matches!(s.get(id), Err(StoreError::Io { .. })));
        assert!(matches!(
            s.put(ObjectKind::Chunk, b"more"),
            Err(StoreError::Io { .. })
        ));
        assert_eq!(s.stats().crashes, 1);
        // The inner store is intact.
        assert_eq!(s.into_inner().get(id).expect("inner"), b"bytes");
    }

    #[test]
    fn absent_objects_surface_missing_not_phantom_faults() {
        let s = FaultStore::new(MemStore::new(), FaultPlan::seeded(1).with_bit_flip(1.0));
        let ghost = hash_object(ObjectKind::Chunk, b"ghost");
        assert!(matches!(s.get(ghost), Err(StoreError::Missing { .. })));
    }

    #[test]
    fn put_failures_leave_inner_untouched() {
        let mut s = FaultStore::new(MemStore::new(), FaultPlan::seeded(5).with_put_failures(1.0));
        assert!(matches!(
            s.put(ObjectKind::Chunk, b"doomed"),
            Err(StoreError::Io { .. })
        ));
        assert_eq!(s.inner().object_count(), 0);
        assert_eq!(s.stats().injected_put_failures, 1);
    }
}
