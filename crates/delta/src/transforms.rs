//! Graph transforms of Section 7.1.
//!
//! * [`random_compression`] — "We simulate compression of data by scaling
//!   storage cost with a random factor between 0.3 and 1, and increasing the
//!   retrieval cost by 20% (to simulate decompression). The resulting
//!   storage and retrieval costs are potentially very different."
//! * [`erdos_renyi_from_sketches`] — "between each pair `(u,v)` of versions,
//!   with probability `p` both deltas `(u,v)` and `(v,u)` are constructed,
//!   and with probability `1−p` neither are." Delta costs come from the
//!   chunk sketches, so unnatural pairs are priced by their true content
//!   distance.

use crate::chunks::ChunkSketch;
use dsv_vgraph::{NodeId, VersionGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Apply the random-compression transform, returning a new graph.
///
/// Storage costs (node and edge) scale by a uniform factor in `[0.3, 1.0)`;
/// edge retrieval costs grow by 20%.
pub fn random_compression(g: &VersionGraph, seed: u64) -> VersionGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = g.clone();
    for v in g.node_ids() {
        let f: f64 = rng.gen_range(0.3..1.0);
        let s = g.node_storage(v);
        *out.node_storage_mut(v) = ((s as f64 * f).round() as u64).max(1);
    }
    for e in g.edge_ids() {
        let f: f64 = rng.gen_range(0.3..1.0);
        let data = out.edge_mut(e);
        data.storage = ((data.storage as f64 * f).round() as u64).max(1);
        data.retrieval = ((data.retrieval as f64 * 1.2).round() as u64).max(1);
    }
    out
}

/// Build an Erdős–Rényi version graph over the versions whose contents are
/// given by `sketches`: node costs are the sketch sizes, and each unordered
/// pair is connected bidirectionally with probability `p`, priced by sketch
/// deltas.
pub fn erdos_renyi_from_sketches(sketches: &[ChunkSketch], p: f64, seed: u64) -> VersionGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = sketches.len();
    let mut g = VersionGraph::new();
    for s in sketches {
        g.add_node(s.byte_size());
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                let fwd = sketches[i].delta_to(&sketches[j]);
                let bwd = sketches[j].delta_to(&sketches[i]);
                g.add_edge(
                    NodeId::new(i),
                    NodeId::new(j),
                    fwd.storage_cost(),
                    fwd.retrieval_cost(),
                );
                g.add_edge(
                    NodeId::new(j),
                    NodeId::new(i),
                    bwd.storage_cost(),
                    bwd.retrieval_cost(),
                );
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{corpus_with_content, CorpusName};

    fn leetcode_sketches() -> Vec<ChunkSketch> {
        corpus_with_content(CorpusName::LeetCodeAnimation, 0.15, 5, true)
            .sketches()
            .expect("sketch mode")
            .to_vec()
    }

    #[test]
    fn compression_shrinks_storage_and_grows_retrieval() {
        let base = corpus_with_content(CorpusName::LeetCodeAnimation, 0.1, 6, false).graph;
        let comp = random_compression(&base, 1);
        assert_eq!(base.n(), comp.n());
        assert_eq!(base.m(), comp.m());
        for v in base.node_ids() {
            assert!(comp.node_storage(v) <= base.node_storage(v));
        }
        let mut any_storage_shrunk = false;
        for (orig, new) in base.edges().iter().zip(comp.edges()) {
            assert!(new.storage <= orig.storage);
            assert!(new.retrieval >= orig.retrieval);
            if new.storage < orig.storage {
                any_storage_shrunk = true;
            }
        }
        assert!(any_storage_shrunk);
    }

    #[test]
    fn compression_decouples_weight_functions() {
        let base = corpus_with_content(CorpusName::LeetCodeAnimation, 0.1, 6, false).graph;
        let comp = random_compression(&base, 2);
        // The single-weight property must be broken by the transform.
        let proportional = comp
            .edges()
            .iter()
            .all(|e| (e.storage as f64 / e.retrieval as f64 - 1.0).abs() < 0.05);
        assert!(!proportional);
    }

    #[test]
    fn er_edge_count_tracks_probability() {
        let sk = leetcode_sketches();
        let n = sk.len();
        let g = erdos_renyi_from_sketches(&sk, 0.2, 3);
        let pairs = n * (n - 1) / 2;
        let expected = 2.0 * pairs as f64 * 0.2;
        assert!(
            (g.m() as f64) > expected * 0.5 && (g.m() as f64) < expected * 1.6,
            "edges {} vs expected {expected}",
            g.m()
        );
        let complete = erdos_renyi_from_sketches(&sk, 1.0, 4);
        assert_eq!(complete.m(), n * (n - 1));
    }

    #[test]
    fn er_unnatural_deltas_cost_more_than_natural() {
        let c = corpus_with_content(CorpusName::LeetCodeAnimation, 0.15, 5, true);
        let natural_avg = c.graph.avg_edge_storage();
        let er = erdos_renyi_from_sketches(c.sketches().expect("sketches"), 1.0, 5);
        let er_avg = er.avg_edge_storage();
        // Footnote 19: the average unnatural delta is ~10x a natural delta.
        assert!(
            er_avg > 2.0 * natural_avg,
            "expected unnatural deltas to dominate: {er_avg} vs {natural_avg}"
        );
    }
}
