//! # dsv-delta — delta engine and synthetic version-graph corpora
//!
//! The paper's experiments (Section 7) build version graphs from real GitHub
//! repositories: each commit is a node whose storage cost is its size in
//! bytes, and between each parent/child commit pair bidirectional delta
//! edges are created, with costs computed by `diff`.
//!
//! This crate rebuilds that pipeline from scratch:
//!
//! * [`myers`] — a Myers `O(ND)` line diff, the delta engine;
//! * [`script`] — edit scripts with a byte-accurate cost model, apply and
//!   invert operations;
//! * [`dataset`] — versioned datasets as interned line sequences over
//!   multiple files;
//! * [`chunks`] — a chunk-sketch content model used for corpora too large to
//!   hold as text, and for deltas between *arbitrary* version pairs (the
//!   Erdős–Rényi construction);
//! * [`evolve`] — a commit-DAG evolution simulator (branches and merges);
//! * [`corpus`] — the six named corpora of Table 4, regenerated
//!   synthetically at calibrated sizes;
//! * [`transforms`] — the "random compression" and "ER construction" graph
//!   transforms of Section 7.1.
//!
//! Substitution note (also recorded in `DESIGN.md`): we cannot crawl GitHub,
//! so the corpora are synthesized. Small corpora carry real text and are
//! diffed with the real Myers engine; large corpora use the chunk-sketch
//! model. Both preserve what the algorithms actually consume — graph shape,
//! cost magnitudes, and the natural/unnatural delta cost ratio.

#![warn(missing_docs)]

pub mod chunks;
pub mod corpus;
pub mod dataset;
pub mod evolve;
pub mod myers;
pub mod script;
pub mod transforms;

pub use chunks::ChunkSketch;
pub use corpus::{corpus, CorpusName, CorpusResult};
pub use script::EditScript;
