//! # dsv-delta — delta engine, synthetic corpora, and the delta store
//!
//! The paper's experiments (Section 7) build version graphs from real GitHub
//! repositories: each commit is a node whose storage cost is its size in
//! bytes, and between each parent/child commit pair bidirectional delta
//! edges are created, with costs computed by `diff`.
//!
//! This crate rebuilds that pipeline from scratch — and, since the
//! planning/execution split, also provides the storage backends that
//! solver plans are *executed* against:
//!
//! ## Content and corpora (the planning inputs)
//!
//! * [`myers`] — a Myers `O(ND)` line diff, the delta engine;
//! * [`script`] — edit scripts with a byte-accurate cost model, apply and
//!   invert operations;
//! * [`dataset`] — versioned datasets as interned line sequences over
//!   multiple files;
//! * [`chunks`] — a chunk-sketch content model used for corpora too large to
//!   hold as text, and for deltas between *arbitrary* version pairs (the
//!   Erdős–Rényi construction);
//! * [`evolve`] — a commit-DAG evolution simulator (branches and merges;
//!   content drawn from per-commit seeded RNG streams, so corpora are
//!   byte-stable regardless of `DSV_NUM_THREADS`);
//! * [`corpus`] — the named corpora of Table 4, regenerated synthetically
//!   at calibrated sizes, optionally with full per-version content;
//! * [`transforms`] — the "random compression" and "ER construction" graph
//!   transforms of Section 7.1.
//!
//! ## The store (the execution substrate)
//!
//! * [`store`] — the [`Store`] trait with two content-addressed,
//!   reference-counted backends: [`MemStore`] (the in-memory corpus behind
//!   the trait) and [`PackStore`] (persistent: an append-only pack with a
//!   fixed-width mmap-friendly index, plus hash-keyed loose files, and a
//!   compacting GC);
//! * [`store::codec`] — canonical payload/delta byte formats whose decoded
//!   *measured* costs are priced by exactly the models that priced the
//!   graph edges, so plan-predicted and store-measured costs must agree
//!   bit for bit;
//! * [`store::source`] — [`store::VersionSource`]: the bridge from
//!   retained corpus content to storable bytes.
//!
//! Plans produced by `dsv_core`'s engine are materialized against these
//! backends by `dsv_core::executor::PlanExecutor`; this crate deliberately
//! knows nothing about solvers — it stores, prices, and reconstructs bytes.
//!
//! Substitution note (also recorded in `DESIGN.md`): we cannot crawl GitHub,
//! so the corpora are synthesized. Small corpora carry real text and are
//! diffed with the real Myers engine; large corpora use the chunk-sketch
//! model. Both preserve what the algorithms actually consume — graph shape,
//! cost magnitudes, and the natural/unnatural delta cost ratio.

#![warn(missing_docs)]

pub mod chunks;
pub mod corpus;
pub mod dataset;
pub mod evolve;
pub mod myers;
pub mod script;
pub mod store;
pub mod transforms;

pub use chunks::ChunkSketch;
pub use corpus::{corpus, corpus_with_content, CorpusName, CorpusResult};
pub use script::EditScript;
pub use store::{
    CorpusContent, CrashPoint, Durability, FaultOp, FaultPlan, FaultStats, FaultStore, MemStore,
    ObjectHasher, ObjectId, ObjectKind, PackOptions, PackStore, Store, StoreError, VersionSource,
};
