//! API-subset shim for the `rand` crate (the build environment is offline).
//!
//! Provides the exact surface this workspace uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`], and [`Rng::gen_range`] / [`Rng::gen_bool`] over integer
//! and float ranges. The generator is SplitMix64 — a different stream than the
//! real `SmallRng`, but equally deterministic per seed, which is all the
//! workspace relies on (seeded reproducibility, not stream compatibility).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range (subset of
/// `rand::distributions::uniform::SampleUniform` + range plumbing).
pub trait SampleRange<T> {
    /// Draw one value uniformly from `self`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The minimal core: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire's method).
fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                (lo as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value from the given range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast generator (SplitMix64 in this shim).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&y));
            let z = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&z));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rough_frequency() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0) || !rng.gen_bool(1.0)); // p=1.0 is allowed
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
