//! API-subset shim for the `serde_json` crate (the build environment is
//! offline). Turns the `serde` shim's [`Value`] tree into JSON text and
//! back: [`to_string`] and [`from_str`], which is all this workspace uses.
//!
//! Integers are emitted and parsed exactly (no `f64` round-trip), strings
//! are escaped per RFC 8259, and the parser accepts arbitrary whitespace
//! but no extensions (no comments, no trailing commas).

#![warn(missing_docs)]

pub use serde::{Error, Value};
use std::collections::BTreeMap;

/// Serialize a value to a JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Keep a fraction so the parser reads it back as a float.
                let s = format!("{x:?}");
                out.push_str(&s);
            } else {
                out.push_str("null"); // JSON has no Inf/NaN
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let mut chars = std::str::from_utf8(rest)
                .map_err(|_| Error::new("invalid UTF-8"))?
                .chars();
            match chars.next() {
                None => return Err(Error::new("unterminated string")),
                Some('"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by the writer;
                            // reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("bad \\u code point"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::object;

    #[test]
    fn roundtrip_nested() {
        let v = object([
            ("n", Value::UInt(3)),
            ("xs", Value::Seq(vec![Value::Int(-1), Value::UInt(2)])),
            ("s", Value::Str("a \"b\"\nc".into())),
            ("f", Value::Float(1.5)),
            ("none", Value::Null),
        ]);
        let text = to_string(&v).expect("writes");
        let back: Value = from_str(&text).expect("parses");
        assert_eq!(v, back);
    }

    #[test]
    fn large_integers_are_exact() {
        let v = Value::UInt(u64::MAX - 1);
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Value = from_str(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v,
            object([("a", Value::Seq(vec![Value::UInt(1), Value::UInt(2)]))])
        );
    }
}
