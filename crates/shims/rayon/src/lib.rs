//! API-subset shim for the `rayon` crate (the build environment is offline).
//!
//! Unlike the first-generation shim, execution is **genuinely parallel**: a
//! global thread pool built on `std::thread` services [`join`], [`scope`],
//! and the chunked parallel iterators behind
//! [`iter::IntoParallelIterator::into_par_iter`]. Scheduling is
//! work-stealing at task granularity: every parallel operation splits into
//! chunk tasks pushed onto a shared injector queue, and idle workers — the
//! submitting thread included, which drains its own scope's tasks while it
//! waits — steal the next available task. Combination of per-chunk results
//! is strictly ordered, so `collect`, `sum`, and `max_by` return exactly
//! what the sequential pipeline would (ties in `max_by` resolve to the
//! later element, as with `std::iter::Iterator::max_by`), independent of
//! thread count or interleaving.
//!
//! Pool size is taken from `DSV_NUM_THREADS`, then `RAYON_NUM_THREADS`,
//! then [`std::thread::available_parallelism`]; `1` disables parallel
//! execution entirely (pure sequential fallback, no worker threads).
//! [`ThreadPoolBuilder`] mirrors the real crate: `build_global` pins the
//! global pool size, `build` + [`ThreadPool::install`] scope a private pool
//! to a closure (used by the shim's own tests so they do not depend on the
//! environment).

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------- pool core

/// Completion latch of one [`scope`] invocation: counts outstanding tasks
/// and carries the first panic payload for re-throw on the owner thread.
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new() -> Arc<Self> {
        Arc::new(ScopeState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }
}

/// One queued unit of work, tagged with its owning scope.
struct Job {
    scope: Arc<ScopeState>,
    run: Box<dyn FnOnce() + Send>,
}

impl Job {
    fn execute(self) {
        let Job { scope, run } = self;
        if let Err(payload) = catch_unwind(AssertUnwindSafe(run)) {
            scope.panic.lock().unwrap().get_or_insert(payload);
        }
        let mut pending = scope.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            scope.done.notify_all();
        }
    }
}

/// State shared between a pool's workers and every thread submitting work.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    work: Condvar,
    threads: usize,
    shutdown: AtomicBool,
}

fn worker_loop(shared: Arc<PoolShared>) {
    // Workers run nested parallel operations on their own pool.
    CURRENT.with(|c| *c.borrow_mut() = Some(shared.clone()));
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                match q.pop_front() {
                    Some(job) => break job,
                    None => q = shared.work.wait(q).unwrap(),
                }
            }
        };
        job.execute();
    }
}

/// A work-stealing thread pool over `std::thread`.
///
/// `threads` is the parallelism width: the pool spawns `threads - 1` worker
/// threads and the submitting thread itself acts as the remaining worker
/// while it waits for a [`scope`] to finish (so a 1-thread pool executes
/// everything inline with zero spawned threads).
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    fn with_threads(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            threads,
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("dsv-rayon-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// The pool's parallelism width (submitting thread included).
    pub fn current_num_threads(&self) -> usize {
        self.shared.threads
    }

    /// Run `f` with this pool as the calling thread's current pool: every
    /// [`join`]/[`scope`]/parallel-iterator call inside `f` uses it instead
    /// of the global pool.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<Arc<PoolShared>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
        let prev = CURRENT.with(|c| c.borrow_mut().replace(self.shared.clone()));
        let _restore = Restore(prev);
        f()
    }

    /// [`scope`] on this specific pool.
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'scope>) -> R) -> R {
        scope_on(&self.shared, f)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Arc<PoolShared>>> =
        const { std::cell::RefCell::new(None) };
}

fn default_threads() -> usize {
    for var in ["DSV_NUM_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::with_threads(default_threads()))
}

fn current_shared() -> Arc<PoolShared> {
    CURRENT
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| global().shared.clone())
}

/// Parallelism width of the calling thread's current pool.
pub fn current_num_threads() -> usize {
    current_shared().threads
}

/// Error returned by [`ThreadPoolBuilder::build_global`] when the global
/// pool already exists.
#[derive(Debug)]
pub struct ThreadPoolBuildError(&'static str);

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`: pick a thread count, then
/// [`build`](ThreadPoolBuilder::build) a private pool or
/// [`build_global`](ThreadPoolBuilder::build_global) the process-wide one.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (environment-derived) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Set the parallelism width (`0` = environment default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    fn resolved(&self) -> usize {
        if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        }
    }

    /// Build a private pool (use [`ThreadPool::install`] to activate it).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool::with_threads(self.resolved()))
    }

    /// Build the global pool. Fails if it was already initialized (by an
    /// earlier call or lazily by the first parallel operation).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let threads = self.resolved();
        let mut installed = false;
        GLOBAL.get_or_init(|| {
            installed = true;
            ThreadPool::with_threads(threads)
        });
        if installed {
            Ok(())
        } else {
            Err(ThreadPoolBuildError(
                "global thread pool already initialized",
            ))
        }
    }
}

// ---------------------------------------------------------------- scope

/// Spawn handle passed to the closure of [`scope`]; tasks spawned through
/// it may borrow anything that outlives `'scope`.
pub struct Scope<'scope> {
    shared: Arc<PoolShared>,
    state: Arc<ScopeState>,
    // Invariant over 'scope, as with `std::thread::Scope`.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queue `f` onto the pool. It runs concurrently with the rest of the
    /// scope body and is guaranteed to finish before [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        *self.state.pending.lock().unwrap() += 1;
        let run: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: `scope_on` does not return until `pending` drops to zero,
        // so everything the closure borrows from `'scope` strictly outlives
        // its execution; the erased box never leaves the pool queue alive.
        let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(run) };
        self.shared.queue.lock().unwrap().push_back(Job {
            scope: self.state.clone(),
            run,
        });
        self.shared.work.notify_one();
    }
}

fn scope_on<'scope, R>(shared: &Arc<PoolShared>, f: impl FnOnce(&Scope<'scope>) -> R) -> R {
    let s = Scope {
        shared: shared.clone(),
        state: ScopeState::new(),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
    // Work-stealing wait: drain this scope's queued tasks on the calling
    // thread, then sleep until in-flight ones (stolen by workers) finish.
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            q.iter()
                .position(|j| Arc::ptr_eq(&j.scope, &s.state))
                .and_then(|i| q.remove(i))
        };
        match job {
            Some(job) => job.execute(),
            None => {
                let mut pending = s.state.pending.lock().unwrap();
                while *pending > 0 {
                    pending = s.state.done.wait(pending).unwrap();
                }
                break;
            }
        }
    }
    if let Some(payload) = s.state.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    }
}

/// Create a scope on the current pool: tasks spawned via [`Scope::spawn`]
/// may borrow locals and all complete before `scope` returns.
pub fn scope<'scope, R>(f: impl FnOnce(&Scope<'scope>) -> R) -> R {
    scope_on(&current_shared(), f)
}

/// Run both closures, potentially in parallel, and return both results.
/// `b` is offered to the pool while the calling thread runs `a`; if no
/// worker picks it up, the caller runs it afterwards (work-stealing).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let shared = current_shared();
    if shared.threads <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let mut ra = None;
    let mut rb = None;
    scope_on(&shared, |s| {
        let rb_slot = &mut rb;
        s.spawn(move || *rb_slot = Some(b()));
        ra = Some(a());
    });
    (
        ra.expect("join: first closure completed"),
        rb.expect("join: second closure completed"),
    )
}

/// Split `base` into chunks, fold each chunk as one pool task, and return
/// the per-chunk accumulators **in chunk order** (the key to thread-count
/// independent results).
fn par_run<B, A, F>(base: Vec<B>, fold: F) -> Vec<A>
where
    B: Send,
    A: Send,
    F: Fn(Vec<B>) -> A + Sync,
{
    let shared = current_shared();
    if shared.threads <= 1 || base.len() <= 1 {
        return vec![fold(base)];
    }
    // More chunks than threads so finish-time imbalance self-levels.
    let target = shared.threads * 8;
    let chunk_size = base.len().div_ceil(target).max(1);
    let mut chunks: Vec<Vec<B>> = Vec::with_capacity(target);
    let mut rest = base;
    while rest.len() > chunk_size {
        let tail = rest.split_off(chunk_size);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);
    let slots: Vec<Mutex<Option<A>>> = chunks.iter().map(|_| Mutex::new(None)).collect();
    scope_on(&shared, |s| {
        for (chunk, slot) in chunks.into_iter().zip(&slots) {
            let fold = &fold;
            s.spawn(move || {
                *slot.lock().unwrap() = Some(fold(chunk));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("chunk completed"))
        .collect()
}

// ---------------------------------------------------------------- iterators

/// Parallel-iterator entry points and adaptors.
pub mod iter {
    use super::par_run;
    use std::cmp::Ordering;
    use std::iter::Sum;
    use std::sync::Arc;

    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// The iterator produced.
        type Iter;
        /// Convert `self` into a parallel iterator over owned items.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Marker unifying the shim's parallel iterators (adaptors are inherent
    /// methods on [`Base`] and [`ParIter`]; real rayon's generic surface is
    /// not reproduced).
    pub trait ParallelIterator {}

    /// A freshly converted source: owned items, no adaptors applied yet.
    pub struct Base<B: Send> {
        items: Vec<B>,
    }

    impl<B: Send> ParallelIterator for Base<B> {}

    /// An adapted pipeline: owned base items plus the composed per-item
    /// transformation (`map`s and `filter_map`s fused into one closure).
    pub struct ParIter<'a, B: Send, T: Send> {
        base: Vec<B>,
        f: Arc<dyn Fn(B) -> Option<T> + Send + Sync + 'a>,
    }

    impl<'a, B: Send, T: Send> ParallelIterator for ParIter<'a, B, T> {}

    impl<B: Send> Base<B> {
        /// Map each element.
        pub fn map<'a, O, G>(self, g: G) -> ParIter<'a, B, O>
        where
            O: Send,
            G: Fn(B) -> O + Send + Sync + 'a,
        {
            ParIter {
                base: self.items,
                f: Arc::new(move |b| Some(g(b))),
            }
        }

        /// Filter-map each element.
        pub fn filter_map<'a, O, G>(self, g: G) -> ParIter<'a, B, O>
        where
            O: Send,
            G: Fn(B) -> Option<O> + Send + Sync + 'a,
        {
            ParIter {
                base: self.items,
                f: Arc::new(g),
            }
        }

        /// Maximum by a comparison function (ties: later element wins, as
        /// with `std::iter::Iterator::max_by`).
        pub fn max_by(self, cmp: impl Fn(&B, &B) -> Ordering + Send + Sync) -> Option<B> {
            combine_max(
                par_run(self.items, |chunk| {
                    chunk.into_iter().max_by(|x, y| cmp(x, y))
                }),
                cmp,
            )
        }

        /// Sum the elements (chunk partial sums, then a sum of sums).
        pub fn sum<S>(self) -> S
        where
            S: Send + Sum<B> + Sum<S>,
        {
            par_run(self.items, |chunk| chunk.into_iter().sum::<S>())
                .into_iter()
                .sum()
        }

        /// Collect into a container, preserving the source order.
        pub fn collect<C: FromIterator<B>>(self) -> C {
            par_run(self.items, |chunk| chunk)
                .into_iter()
                .flatten()
                .collect()
        }
    }

    impl<'a, B: Send + 'a, T: Send + 'a> ParIter<'a, B, T> {
        /// Map each element.
        pub fn map<O, G>(self, g: G) -> ParIter<'a, B, O>
        where
            O: Send + 'a,
            G: Fn(T) -> O + Send + Sync + 'a,
        {
            let f = self.f;
            ParIter {
                base: self.base,
                f: Arc::new(move |b| f(b).map(&g)),
            }
        }

        /// Filter-map each element.
        pub fn filter_map<O, G>(self, g: G) -> ParIter<'a, B, O>
        where
            O: Send + 'a,
            G: Fn(T) -> Option<O> + Send + Sync + 'a,
        {
            let f = self.f;
            ParIter {
                base: self.base,
                f: Arc::new(move |b| f(b).and_then(&g)),
            }
        }

        /// Maximum by a comparison function (ties: later element wins, as
        /// with `std::iter::Iterator::max_by`).
        pub fn max_by(self, cmp: impl Fn(&T, &T) -> Ordering + Send + Sync) -> Option<T> {
            let f = self.f;
            combine_max(
                par_run(self.base, |chunk| {
                    chunk
                        .into_iter()
                        .filter_map(|b| f(b))
                        .max_by(|x, y| cmp(x, y))
                }),
                cmp,
            )
        }

        /// Sum the produced elements (chunk partial sums, then a sum of
        /// sums).
        pub fn sum<S>(self) -> S
        where
            S: Send + Sum<T> + Sum<S>,
        {
            let f = self.f;
            par_run(self.base, |chunk| {
                chunk.into_iter().filter_map(|b| f(b)).sum::<S>()
            })
            .into_iter()
            .sum()
        }

        /// Collect into a container, preserving the source order.
        pub fn collect<C: FromIterator<T>>(self) -> C {
            let f = self.f;
            par_run(self.base, |chunk| {
                chunk.into_iter().filter_map(|b| f(b)).collect::<Vec<T>>()
            })
            .into_iter()
            .flatten()
            .collect()
        }
    }

    /// Ordered reduction of per-chunk maxima with sequential tie semantics
    /// (later chunk wins ties).
    fn combine_max<T>(parts: Vec<Option<T>>, cmp: impl Fn(&T, &T) -> Ordering) -> Option<T> {
        parts.into_iter().flatten().reduce(|acc, x| {
            if cmp(&acc, &x) == Ordering::Greater {
                acc
            } else {
                x
            }
        })
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = Base<usize>;
        fn into_par_iter(self) -> Base<usize> {
            Base {
                items: self.collect(),
            }
        }
    }

    impl IntoParallelIterator for std::ops::Range<u32> {
        type Item = u32;
        type Iter = Base<u32>;
        fn into_par_iter(self) -> Base<u32> {
            Base {
                items: self.collect(),
            }
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = Base<T>;
        fn into_par_iter(self) -> Base<T> {
            Base { items: self }
        }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{join, ThreadPoolBuilder};
    use std::collections::HashSet;
    use std::sync::{Barrier, Mutex};
    use std::time::Duration;

    #[test]
    fn range_map_collect() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn filter_map_max_by() {
        let best = (0..100usize)
            .into_par_iter()
            .filter_map(|x| if x % 7 == 0 { Some(x) } else { None })
            .max_by(|a, b| a.cmp(b));
        assert_eq!(best, Some(98));
    }

    #[test]
    fn vec_sum() {
        let s: u64 = vec![1u64, 2, 3].into_par_iter().sum();
        assert_eq!(s, 6);
    }

    #[test]
    fn map_then_filter_map_chain() {
        let v: Vec<usize> = (0..10usize)
            .into_par_iter()
            .map(|x| x * 3)
            .filter_map(|x| if x % 2 == 0 { Some(x) } else { None })
            .collect();
        assert_eq!(v, vec![0, 6, 12, 18, 24]);
    }

    #[test]
    fn max_by_tie_takes_the_later_element_like_std() {
        // Elements compare only by .0; sequential max_by keeps the last max.
        let items: Vec<(u32, usize)> = (0..4000).map(|i| (i as u32 / 1000, i)).collect();
        let want = items.iter().copied().max_by(|a, b| a.0.cmp(&b.0));
        let got = items.into_par_iter().max_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(got, want);
    }

    /// Results must be identical across pool widths (ordered combination).
    #[test]
    fn results_independent_of_thread_count() {
        let compute = || -> (Vec<usize>, u64, Option<usize>) {
            let c: Vec<usize> = (0..10_000usize).into_par_iter().map(|x| x ^ 0x5a).collect();
            let s: u64 = (0..10_000usize).into_par_iter().map(|x| x as u64).sum();
            let m = (0..10_000usize)
                .into_par_iter()
                .filter_map(|x| if x % 3 == 0 { Some(x / 3) } else { None })
                .max_by(|a, b| a.cmp(b));
            (c, s, m)
        };
        let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let four = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(one.install(compute), four.install(compute));
    }

    /// `par_iter` must actually fan out over more than one OS thread when
    /// the pool is wider than one.
    #[test]
    fn par_iter_uses_multiple_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        let ids = Mutex::new(HashSet::new());
        pool.install(|| {
            let _: Vec<()> = (0..256usize)
                .into_par_iter()
                .map(|_| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(Duration::from_millis(1));
                })
                .collect();
        });
        let distinct = ids.lock().unwrap().len();
        assert!(distinct > 1, "expected >1 worker threads, saw {distinct}");
    }

    /// `join` must run its closures concurrently: both sides block on a
    /// two-party barrier, which deadlocks unless two threads participate.
    #[test]
    fn join_runs_closures_concurrently() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let barrier = Barrier::new(2);
        let (ra, rb) = pool.install(|| {
            join(
                || {
                    barrier.wait();
                    std::thread::current().id()
                },
                || {
                    barrier.wait();
                    std::thread::current().id()
                },
            )
        });
        assert_ne!(ra, rb, "join sides ran on the same thread");
    }

    #[test]
    fn one_thread_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let here = std::thread::current().id();
        let ids: Vec<_> = pool.install(|| {
            (0..64usize)
                .into_par_iter()
                .map(|_| std::thread::current().id())
                .collect()
        });
        assert!(ids.iter().all(|&id| id == here));
    }

    #[test]
    fn scope_propagates_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                super::scope(|s| {
                    s.spawn(|| panic!("boom"));
                });
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let total: u64 = pool.install(|| {
            let partials: Vec<u64> = (0..8usize)
                .into_par_iter()
                .map(|i| {
                    // Inner parallel op from inside a pool task.
                    (0..100usize)
                        .into_par_iter()
                        .map(move |j| (i * 100 + j) as u64)
                        .sum::<u64>()
                })
                .collect();
            partials.into_iter().sum()
        });
        assert_eq!(total, (0..800u64).sum());
    }
}
