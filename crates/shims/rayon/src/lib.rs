//! API-subset shim for the `rayon` crate (the build environment is offline).
//!
//! Provides `prelude::*` with [`iter::IntoParallelIterator`] for ranges and
//! vectors plus the iterator adaptors this workspace uses (`map`,
//! `filter_map`, `max_by`, `sum`, `collect`). **Execution is sequential**:
//! the adaptors simply delegate to `std::iter`. Call sites keep the
//! data-parallel shape, so swapping in the real rayon restores parallelism
//! with no code changes; a true work-stealing pool is a ROADMAP open item.

#![warn(missing_docs)]

/// Parallel-iterator traits and adaptors (sequential in this shim).
pub mod iter {
    /// Conversion into a "parallel" iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// The iterator produced.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Convert `self` into a (sequentially executing) parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// The adaptor surface used by this workspace.
    ///
    /// Deliberately *not* a `std::iter::Iterator`, so that adaptor calls
    /// resolve unambiguously to this trait (exactly as with real rayon).
    pub trait ParallelIterator: Sized {
        /// Element type.
        type Item;
        /// Underlying sequential iterator.
        type Inner: Iterator<Item = Self::Item>;

        /// Unwrap into the underlying sequential iterator.
        fn into_seq(self) -> Self::Inner;

        /// Map each element.
        fn map<O, F: FnMut(Self::Item) -> O>(self, f: F) -> Seq<std::iter::Map<Self::Inner, F>> {
            Seq(self.into_seq().map(f))
        }

        /// Filter-map each element.
        fn filter_map<O, F: FnMut(Self::Item) -> Option<O>>(
            self,
            f: F,
        ) -> Seq<std::iter::FilterMap<Self::Inner, F>> {
            Seq(self.into_seq().filter_map(f))
        }

        /// Maximum by a comparison function.
        fn max_by<F: FnMut(&Self::Item, &Self::Item) -> std::cmp::Ordering>(
            self,
            f: F,
        ) -> Option<Self::Item> {
            self.into_seq().max_by(f)
        }

        /// Sum the elements.
        fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
            self.into_seq().sum()
        }

        /// Collect into a container.
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.into_seq().collect()
        }
    }

    /// Wrapper marking a sequential iterator as "parallel".
    pub struct Seq<I>(I);

    impl<I: Iterator> ParallelIterator for Seq<I> {
        type Item = I::Item;
        type Inner = I;
        fn into_seq(self) -> I {
            self.0
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = Seq<std::ops::Range<usize>>;
        fn into_par_iter(self) -> Self::Iter {
            Seq(self)
        }
    }

    impl IntoParallelIterator for std::ops::Range<u32> {
        type Item = u32;
        type Iter = Seq<std::ops::Range<u32>>;
        fn into_par_iter(self) -> Self::Iter {
            Seq(self)
        }
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = Seq<std::vec::IntoIter<T>>;
        fn into_par_iter(self) -> Self::Iter {
            Seq(self.into_iter())
        }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn filter_map_max_by() {
        let best = (0..100usize)
            .into_par_iter()
            .filter_map(|x| if x % 7 == 0 { Some(x) } else { None })
            .max_by(|a, b| a.cmp(b));
        assert_eq!(best, Some(98));
    }

    #[test]
    fn vec_sum() {
        let s: u64 = vec![1u64, 2, 3].into_par_iter().sum();
        assert_eq!(s, 6);
    }
}
