//! API-subset shim for the `criterion` crate (the build environment is
//! offline). Implements the macro and builder surface the workspace's
//! benches use with a plain fixed-iteration timer: every benchmark runs
//! `sample_size` samples (after one warm-up iteration per sample batch) and
//! prints mean/min/max wall time to stdout. No statistics, plots, or
//! baseline comparisons — those need the real crate.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        run_one(&format!("{id}"), 10, Duration::from_secs(1), &mut f);
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement time (used as a cap on total sampling).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time (accepted for API compatibility; the shim warms up with
    /// one untimed iteration instead).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, mut f: F) {
        let label = format!("{}/{id}", self.name);
        run_one(&label, self.sample_size, self.measurement_time, &mut f);
    }

    /// Benchmark a closure with an input handed through.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{id}", self.name);
        run_one(&label, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, cap: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        timed: Duration::ZERO,
        iters: 0,
    };
    // Warm-up: one untimed pass.
    f(&mut b);
    b.timed = Duration::ZERO;
    b.iters = 0;
    let started = Instant::now();
    let mut per_sample: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let before = (b.timed, b.iters);
        f(&mut b);
        let (dt, di) = (b.timed - before.0, b.iters - before.1);
        per_sample.push(if di > 0 { dt / di as u32 } else { dt });
        if started.elapsed() > cap * 2 {
            break; // keep offline bench runs bounded
        }
    }
    let n = per_sample.len().max(1) as u32;
    let mean: Duration = per_sample.iter().sum::<Duration>() / n;
    let min = per_sample.iter().min().copied().unwrap_or_default();
    let max = per_sample.iter().max().copied().unwrap_or_default();
    println!(
        "  {label}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
        per_sample.len()
    );
}

/// Runs the benchmarked closure and accumulates timing.
pub struct Bencher {
    timed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time one closure, repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.timed += t0.elapsed();
        self.iters += 1;
    }
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Define a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the given groups, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            runs += 1;
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim2");
        group.sample_size(1);
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * x));
        });
    }
}
