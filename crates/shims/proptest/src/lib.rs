//! API-subset shim for the `proptest` crate (the build environment is
//! offline). Supports the surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro (optionally with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * [`prelude::prop_assert!`], [`prelude::prop_assert_eq!`] and
//!   [`prelude::prop_assume!`],
//! * strategies: integer/float ranges, tuples (up to 6), `any::<T>()`,
//!   [`collection::vec`], and [`strategy::Strategy::prop_map`].
//!
//! Semantic differences from real proptest: generation is deterministic per
//! test (seeded from the test's case count, stable across runs of the same
//! build) and there is **no shrinking** — a failing case panics with the
//! case number. `prop_assume!` rejects the case; a test fails if fewer than
//! the configured number of cases survive rejection within a 20× attempt
//! budget.

#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through a function.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// Strategy for the full domain of a type (see [`crate::prelude::any`]).
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    /// Types with a full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.0.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.0.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    use rand::RngCore as _;
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.0.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic RNG and case-level error plumbing.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies (deterministic per seed).
    pub struct TestRng(pub SmallRng);

    impl TestRng {
        /// Seeded constructor.
        pub fn new(seed: u64) -> Self {
            TestRng(SmallRng::seed_from_u64(seed))
        }
    }

    /// Outcome of one generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case did not satisfy a `prop_assume!` precondition.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of (accepted) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    //! The customary glob import.

    pub use crate::collection;
    pub use crate::proptest;
    pub use crate::strategy::{Any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume};

    /// Full-domain strategy for `T`.
    pub fn any<T: crate::strategy::Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

/// Reject the current case unless `cond` holds (does not count as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Each `#[test] fn name(pat in strategy, ...)` body
/// runs for the configured number of generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])+ fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                // Stable per-test seed: the test name hashed FNV-style.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed ^= b as u64;
                    seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
                }
                let mut rng = $crate::test_runner::TestRng::new(seed);
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cfg.cases.saturating_mul(20).max(20);
                while accepted < cfg.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest `{}`: only {accepted}/{} cases survived \
                             prop_assume after {max_attempts} attempts",
                            stringify!($name),
                            cfg.cases,
                        );
                    }
                    #[allow(clippy::redundant_closure_call)]
                    let case: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat = $crate::strategy::Strategy::generate(
                                    &($strat),
                                    &mut rng,
                                );
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match case {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => continue,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest `{}` failed on attempt {attempts}: {msg}",
                            stringify!($name),
                        ),
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 3u64..17, (a, b) in (0usize..5, 1i64..4)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((1..4).contains(&b));
        }

        #[test]
        fn vec_and_map(v in collection::vec(0u32..10, 0..6),
                       w in collection::vec(1u64..100, 4),
                       s in (1u64..50).prop_map(|x| x * 2)) {
            prop_assert!(v.len() < 6);
            prop_assert_eq!(w.len(), 4);
            prop_assert!(s % 2 == 0);
            prop_assert!((2..100).contains(&s));
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn any_covers_domain(x in any::<u64>(), y in any::<bool>()) {
            let _ = (x, y);
        }
    }

    mod failing {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }

        #[test]
        #[should_panic(expected = "failed on attempt")]
        fn failures_panic() {
            always_fails();
        }
    }
}
