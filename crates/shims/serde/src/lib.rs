//! API-subset shim for the `serde` crate (the build environment is offline).
//!
//! Real serde's visitor-based `Serializer`/`Deserializer` machinery is far
//! more than this workspace needs, so the shim works through an owned value
//! tree instead: [`Serialize`] renders a type into a [`Value`],
//! [`Deserialize`] rebuilds the type from one. There is **no derive macro**
//! — the handful of serializable types in this workspace implement the
//! traits by hand (a few lines each). `serde_json` (its own shim) turns
//! `Value` into JSON text and back.
//!
//! Integers are kept as `u64`/`i64` (never squeezed through `f64`), so
//! `Cost` values round-trip exactly.

#![warn(missing_docs)]

use std::collections::BTreeMap;

/// An owned, JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (serialized without a fraction).
    UInt(u64),
    /// Signed integer (serialized without a fraction).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object. `BTreeMap` keeps key order deterministic.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Fetch a field of an object, or error.
    pub fn field<'a>(&'a self, key: &str) -> Result<&'a Value, Error> {
        match self {
            Value::Map(m) => m
                .get(key)
                .ok_or_else(|| Error::new(format!("missing field `{key}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{key}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Construct from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Render into a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::new(format!("{x} out of range"))),
                    Value::Int(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::new(format!("{x} out of range"))),
                    other => Err(Error::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::new(format!("{x} out of range"))),
                    Value::UInt(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::new(format!("{x} out of range"))),
                    other => Err(Error::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(x) => Ok(*x as f64),
            Value::Int(x) => Ok(*x as f64),
            other => Err(Error::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Build a [`Value::Map`] from `("key", value)` pairs — the helper the
/// hand-written `Serialize` impls use.
pub fn object<const N: usize>(fields: [(&str, Value); N]) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()),
            Ok(vec![1, 2, 3])
        );
    }

    #[test]
    fn large_u64_survives() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()), Ok(big));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(Value::Null.field("k").is_err());
        let obj = object([("k", Value::UInt(1))]);
        assert_eq!(obj.field("k").unwrap(), &Value::UInt(1));
        assert!(obj.field("missing").is_err());
    }
}
