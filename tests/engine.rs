//! Engine integration tests: the parity suite (engine-dispatched solvers
//! must return byte-identical plans and costs to their direct
//! free-function calls) and a seeded property loop (every `Solution` the
//! engine hands out validates and respects its `ProblemKind` budget).

use dataset_versioning::prelude::*;
use dataset_versioning::vgraph::generators::{
    bidirectional_path, erdos_renyi_bidirectional, random_tree, CostModel,
};

fn test_graphs() -> Vec<(String, VersionGraph)> {
    let mut graphs = Vec::new();
    for seed in 0..3 {
        graphs.push((
            format!("tree-{seed}"),
            random_tree(10, &CostModel::default(), seed),
        ));
        graphs.push((
            format!("er-{seed}"),
            erdos_renyi_bidirectional(12, 0.3, &CostModel::default(), seed),
        ));
    }
    graphs.push((
        "path".into(),
        bidirectional_path(14, &CostModel::default(), 9),
    ));
    graphs
}

/// Engine dispatch must add validation and metadata — never change the
/// plan. Byte-identical plans and costs for every deterministic solver.
#[test]
fn parity_lmg_and_lmg_all() {
    let engine = Engine::with_default_solvers();
    let opts = SolveOptions::default();
    for (name, g) in test_graphs() {
        let smin = min_storage_value(&g);
        for budget in [smin, smin * 3 / 2, smin * 3] {
            let problem = ProblemKind::Msr {
                storage_budget: budget,
            };
            for (solver, direct) in [
                ("LMG", lmg(&g, budget).expect("feasible")),
                ("LMG-All", lmg_all(&g, budget).expect("feasible")),
            ] {
                let sol = engine
                    .solve_with(solver, &g, problem, &opts)
                    .expect("feasible");
                assert_eq!(sol.plan, direct, "{solver} plan differs on {name}");
                assert_eq!(sol.costs, direct.costs(&g), "{solver} costs on {name}");
                // The solver's internally tracked objective must agree with
                // the exact re-evaluation (PlanView::total_retrieval).
                assert_eq!(
                    sol.meta.reported_objective,
                    Some(sol.costs.total_retrieval),
                    "{solver} reported objective on {name}"
                );
            }
        }
    }
}

#[test]
fn parity_modified_prims() {
    let engine = Engine::with_default_solvers();
    let opts = SolveOptions::default();
    for (name, g) in test_graphs() {
        for budget in [0, g.max_edge_retrieval(), g.max_edge_retrieval() * 3] {
            let problem = ProblemKind::Bmr {
                retrieval_budget: budget,
            };
            let direct = modified_prims(&g, budget);
            let sol = engine
                .solve_with("MP", &g, problem, &opts)
                .expect("MP is always feasible");
            assert_eq!(sol.plan, direct, "MP plan differs on {name}");
            assert_eq!(sol.costs, direct.costs(&g), "MP costs on {name}");
        }
    }
}

#[test]
fn parity_dp_msr_and_bsr_reduction() {
    let engine = Engine::with_default_solvers();
    let opts = SolveOptions::default();
    for (name, g) in test_graphs() {
        let smin = min_storage_value(&g);
        let budget = smin * 2;
        let direct =
            dp_msr_on_graph(&g, NodeId(0), budget, &DpMsrConfig::default()).expect("feasible");
        let sol = engine
            .solve_with(
                "DP-MSR",
                &g,
                ProblemKind::Msr {
                    storage_budget: budget,
                },
                &opts,
            )
            .expect("feasible");
        assert_eq!(sol.plan, direct.0, "DP-MSR plan differs on {name}");
        assert_eq!(sol.costs, direct.1, "DP-MSR costs on {name}");

        // BSR through the same solver (Lemma-7 frontier lookup).
        let r_budget = g.max_edge_retrieval() * g.n() as u64;
        let (bsr_plan, bsr_storage) =
            bsr_via_msr(&g, NodeId(0), r_budget, &DpMsrConfig::default()).expect("feasible");
        let sol = engine
            .solve_with(
                "DP-MSR",
                &g,
                ProblemKind::Bsr {
                    retrieval_budget: r_budget,
                },
                &opts,
            )
            .expect("feasible");
        assert_eq!(sol.plan, bsr_plan, "BSR plan differs on {name}");
        assert_eq!(sol.costs.storage, bsr_storage, "BSR storage on {name}");
    }
}

#[test]
fn parity_dp_bmr_and_mmr_reduction() {
    let engine = Engine::with_default_solvers();
    let opts = SolveOptions::default();
    for (name, g) in test_graphs() {
        let r_budget = g.max_edge_retrieval();
        let direct = dp_bmr_on_graph(&g, NodeId(0), r_budget).expect("connected");
        let sol = engine
            .solve_with(
                "DP-BMR",
                &g,
                ProblemKind::Bmr {
                    retrieval_budget: r_budget,
                },
                &opts,
            )
            .expect("feasible");
        assert_eq!(sol.plan, direct.plan, "DP-BMR plan differs on {name}");
        assert_eq!(
            sol.costs.storage, direct.storage,
            "DP-BMR storage on {name}"
        );

        // MMR through the same solver (Lemma-7 binary search).
        let smin = min_storage_value(&g);
        let (mmr_plan, mmr_value) = mmr_on_graph(&g, NodeId(0), smin * 2).expect("feasible");
        let sol = engine
            .solve_with(
                "DP-BMR",
                &g,
                ProblemKind::Mmr {
                    storage_budget: smin * 2,
                },
                &opts,
            )
            .expect("feasible");
        assert_eq!(sol.plan, mmr_plan, "MMR plan differs on {name}");
        assert_eq!(sol.costs.max_retrieval, mmr_value, "MMR value on {name}");
        assert_eq!(sol.meta.reported_objective, Some(mmr_value));
    }
}

#[test]
fn parity_exact_solvers() {
    let engine = Engine::with_default_solvers();
    let g = bidirectional_path(6, &CostModel::default(), 4);
    let smin = min_storage_value(&g);
    let budget = smin * 2;
    let problem = ProblemKind::Msr {
        storage_budget: budget,
    };
    let opts = SolveOptions::default();

    // Brute force: deterministic enumeration, identical plan.
    let direct = brute_force(&g, problem).expect("feasible");
    let sol = engine
        .solve_with("BruteForce", &g, problem, &opts)
        .expect("feasible");
    assert_eq!(sol.plan, direct.plan);
    assert_eq!(sol.costs, direct.costs);
    assert!(sol.meta.proven_optimal);

    // ILP: same incumbent priming as the engine's solver uses (best of
    // LMG-All and the DP-MSR frontier plan).
    let incumbent = [
        lmg_all(&g, budget).map(|p| p.costs(&g).total_retrieval),
        dp_msr_on_graph(&g, NodeId(0), budget, &DpMsrConfig::default())
            .map(|(_, c)| c.total_retrieval),
    ]
    .into_iter()
    .flatten()
    .min();
    let direct = msr_opt(&g, budget, opts.ilp_max_nodes, incumbent).expect("feasible");
    let sol = engine
        .solve_with("ILP", &g, problem, &opts)
        .expect("feasible");
    assert_eq!(sol.plan, direct.plan, "ILP plan differs");
    assert_eq!(sol.costs.total_retrieval, direct.total_retrieval);
    assert_eq!(sol.meta.proven_optimal, direct.proven_optimal);
    // Both exact solvers agree with each other.
    assert_eq!(
        sol.costs.total_retrieval,
        brute_force(&g, problem).unwrap().costs.total_retrieval
    );

    // DP-BTW: constructive exact — the reconstructed plan realizes the
    // direct frontier value, byte-identically to the free function.
    let direct_value = btw_msr_value(&g, budget).expect("feasible");
    let (direct_plan, _) = btw_msr_plan(&g, budget).expect("feasible");
    let sol = engine
        .solve_with("DP-BTW", &g, problem, &opts)
        .expect("feasible");
    assert_eq!(sol.plan, direct_plan, "DP-BTW plan differs");
    assert_eq!(sol.costs.total_retrieval, direct_value);
    assert!(sol.meta.proven_optimal);
    assert_eq!(sol.meta.lower_bound, Some(direct_value));
    // Exact is exact: DP-BTW agrees with brute force.
    assert_eq!(
        sol.costs.total_retrieval,
        brute_force(&g, problem).unwrap().costs.total_retrieval
    );
}

/// Seeded property loop: every solution the engine returns — via plain
/// dispatch and via portfolio — validates structurally and respects its
/// problem's budget, across random trees and Erdős–Rényi graphs, all four
/// problem kinds, and a spread of budgets.
#[test]
fn property_every_solution_validates_and_respects_its_budget() {
    let engine = Engine::with_default_solvers();
    let mut solutions = 0usize;
    for seed in 0..10u64 {
        let g = if seed % 2 == 0 {
            random_tree(4 + (seed as usize * 3) % 9, &CostModel::default(), seed)
        } else {
            erdos_renyi_bidirectional(
                4 + (seed as usize * 5) % 8,
                0.35,
                &CostModel::default(),
                seed,
            )
        };
        let smin = min_storage_value(&g);
        let rmax = g.max_edge_retrieval();
        let opts = SolveOptions {
            ilp_max_nodes: 2_000,
            ..Default::default()
        };
        let problems = [
            ProblemKind::Msr {
                storage_budget: smin + (seed % 4) * smin / 2,
            },
            ProblemKind::Mmr {
                storage_budget: smin + (seed % 3) * smin,
            },
            ProblemKind::Bsr {
                retrieval_budget: rmax * (1 + seed % 5) * g.n() as u64 / 2,
            },
            ProblemKind::Bmr {
                retrieval_budget: rmax * (seed % 3),
            },
        ];
        for problem in problems {
            match engine.solve(&g, problem, &opts) {
                Ok(sol) => {
                    sol.plan
                        .validate(&g)
                        .unwrap_or_else(|e| panic!("seed {seed} {}: {e}", problem.name()));
                    assert!(
                        sol.constrained(problem) <= problem.budget(),
                        "seed {seed} {}: budget violated",
                        problem.name()
                    );
                    solutions += 1;
                }
                Err(SolveError::Infeasible { .. }) => {}
                Err(other) => panic!("seed {seed} {}: unexpected {other}", problem.name()),
            }
            // Portfolio on the small instances (it also runs the exact
            // solvers): the winner must beat-or-match plain dispatch.
            if g.n() <= 8 {
                if let Ok(p) = engine.portfolio(&g, problem, &opts) {
                    p.best.plan.validate(&g).expect("portfolio plan valid");
                    assert!(p.best.constrained(problem) <= problem.budget());
                    if let Ok(dispatched) = engine.solve(&g, problem, &opts) {
                        assert!(
                            p.best.objective(problem) <= dispatched.objective(problem),
                            "seed {seed} {}: portfolio worse than dispatch",
                            problem.name()
                        );
                    }
                    solutions += 1;
                }
            }
        }
    }
    assert!(
        solutions >= 30,
        "property loop exercised too few solutions ({solutions})"
    );
}

/// The objective accessor must match the problem's objective side, and the
/// constrained accessor the budget side, for all four kinds.
#[test]
fn objective_and_constraint_sides_are_consistent() {
    let engine = Engine::with_default_solvers();
    let g = random_tree(9, &CostModel::default(), 11);
    let opts = SolveOptions::default();
    let smin = min_storage_value(&g);
    let rmax = g.max_edge_retrieval();

    let msr = engine
        .solve(
            &g,
            ProblemKind::Msr {
                storage_budget: smin * 2,
            },
            &opts,
        )
        .expect("feasible");
    assert_eq!(
        msr.objective(ProblemKind::Msr {
            storage_budget: smin * 2
        }),
        msr.costs.total_retrieval
    );
    assert_eq!(
        msr.constrained(ProblemKind::Msr {
            storage_budget: smin * 2
        }),
        msr.costs.storage
    );

    let bmr = engine
        .solve(
            &g,
            ProblemKind::Bmr {
                retrieval_budget: rmax,
            },
            &opts,
        )
        .expect("feasible");
    assert_eq!(
        bmr.objective(ProblemKind::Bmr {
            retrieval_budget: rmax
        }),
        bmr.costs.storage
    );
    assert_eq!(
        bmr.constrained(ProblemKind::Bmr {
            retrieval_budget: rmax
        }),
        bmr.costs.max_retrieval
    );
}
