//! Versioning-service integration: robustness under overload, expired
//! deadlines, and injected store faults.
//!
//! This suite pins the service layer's contract:
//!
//! * **overload never deadlocks** — with every worker wedged and the
//!   bounded queue full, further submissions are shed immediately with
//!   `Overloaded { retry_after_hint }`; once the wedge lifts, every
//!   admitted ticket resolves and the queue drains to zero;
//! * **expired deadlines return `Cancelled`, not partial plans** — a
//!   deadline that fires in the queue or mid-solve surfaces as a typed
//!   `Cancelled`, and no `Solved` reply ever arrives past its deadline;
//! * **chaos loop** — concurrent client threads hammer a service over a
//!   `FaultStore`-wrapped `PackStore` at a 1% injected fault rate:
//!   every served payload must be byte-identical to the source, repairs
//!   are counted, and a clean pass afterwards serves with zero faults;
//! * **full-tier determinism** — a service `Solve` with a comfortable
//!   deadline returns exactly the plan a direct `Engine::solve` does.

use dataset_versioning::prelude::*;
use dsv_delta::evolve::{evolve, ContentMode, EvolveParams, SketchParams};
use dsv_delta::store::codec::Payload;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "dsv-service-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A matched (graph, ground-truth source) pair over sketch content.
fn fixture(commits: usize, seed: u64) -> (Arc<VersionGraph>, Arc<CorpusContent>) {
    let ev = evolve(&EvolveParams {
        commits,
        branch_prob: 0.15,
        merge_prob: 0.0,
        max_branches: 4,
        keep_content: true,
        mode: ContentMode::Sketch(SketchParams {
            chunk_size: 64,
            init_bytes: 4096,
            churn_bytes: (256, 1024),
            replace_ratio: 0.3,
        }),
        seed,
    });
    (
        Arc::new(ev.graph),
        Arc::new(ev.content.expect("keep_content")),
    )
}

fn msr(g: &VersionGraph) -> ProblemKind {
    ProblemKind::Msr {
        storage_budget: min_storage_value(g) * 2,
    }
}

/// A [`VersionSource`] delegate whose reads block until a gate opens —
/// wedges a service worker deterministically inside `Commit`'s ingest.
struct GatedSource {
    inner: Arc<CorpusContent>,
    open: Mutex<bool>,
    gate: Condvar,
}

impl GatedSource {
    fn new(inner: Arc<CorpusContent>) -> Arc<Self> {
        Arc::new(GatedSource {
            inner,
            open: Mutex::new(false),
            gate: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.gate.notify_all();
    }

    fn block_until_open(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.gate.wait(open).unwrap();
        }
    }
}

impl VersionSource for GatedSource {
    fn version_count(&self) -> usize {
        self.inner.version_count()
    }

    fn payload(&self, v: u32) -> Payload {
        self.block_until_open();
        self.inner.payload(v)
    }

    fn delta(&self, src: u32, dst: u32) -> Vec<u8> {
        self.block_until_open();
        self.inner.delta(src, dst)
    }
}

#[test]
fn overload_sheds_immediately_and_drains_without_deadlock() {
    let (g, content) = fixture(16, 3);
    let gated = GatedSource::new(content);
    let plan = min_storage_plan(&g);
    let cfg = ServiceConfig {
        workers: 2,
        queue_capacity: 3,
        ..ServiceConfig::default()
    };
    let svc = VersioningService::with_config(MemStore::new(), cfg);

    // Wedge both workers inside a Commit (the gated source blocks every
    // read), then fill the queue to capacity.
    let commit = |s: &VersioningService<MemStore>| {
        s.submit_with_deadline(
            Request::Commit {
                graph: g.clone(),
                plan: plan.clone(),
                source: gated.clone() as Arc<dyn VersionSource + Send + Sync>,
            },
            Duration::from_secs(60),
        )
    };
    let mut tickets = Vec::new();
    for _ in 0..2 {
        tickets.push(commit(&svc).expect("worker slots admit"));
    }
    // Wait until both workers have actually dequeued their jobs (the
    // queue shows 0 in-flight) before filling the queue.
    while svc.queue_depth() > 0 {
        std::thread::yield_now();
    }
    for _ in 0..3 {
        tickets.push(commit(&svc).expect("queue slots admit"));
    }

    // Queue is full: the next submission is shed *immediately* with a
    // typed error carrying a retry hint.
    let err = commit(&svc).expect_err("over-capacity submission is shed");
    match err {
        ServiceError::Overloaded {
            queue_depth,
            capacity,
            retry_after_hint,
        } => {
            assert_eq!((queue_depth, capacity), (3, 3));
            assert!(retry_after_hint > Duration::ZERO);
        }
        other => panic!("expected Overloaded, got {other}"),
    }
    let stats = svc.stats();
    assert_eq!(stats.shed, 1);
    assert!(stats.queue_depth <= 3, "queue depth stays bounded");
    assert_eq!(stats.queue_high_water, 3);

    // Lift the wedge: every admitted ticket must resolve (no deadlock)
    // and the queue must drain.
    gated.open();
    for t in tickets {
        t.wait().expect("admitted commits complete after the burst");
    }
    assert_eq!(svc.queue_depth(), 0, "queue drains after the shed burst");
    let stats = svc.stats();
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.shed, 1);
}

#[test]
fn expired_deadlines_are_cancelled_never_partial() {
    let (g, _) = fixture(400, 7);
    let svc = VersioningService::new(MemStore::new());
    // An already-expired deadline (queue-stage expiry)…
    let err = svc
        .submit_with_deadline(
            Request::Solve {
                graph: g.clone(),
                problem: msr(&g),
            },
            Duration::ZERO,
        )
        .expect("admission precedes the deadline check")
        .wait()
        .expect_err("expired work must fail");
    assert!(matches!(err, ServiceError::Cancelled { .. }));

    // …and a deadline far too short for a 400-node solve (mid-run
    // preemption or the completed-late conversion — either way the
    // reply must be Cancelled, never a truncated plan). Each probe uses
    // a distinct budget so the warm memo cannot answer from cache — the
    // cached tier legitimately *can* beat these deadlines.
    for (i, micros) in [50u64, 200, 800].into_iter().enumerate() {
        let result = svc
            .submit_with_deadline(
                Request::Solve {
                    graph: g.clone(),
                    problem: ProblemKind::Msr {
                        storage_budget: min_storage_value(&g) * 2 + 1 + i as Cost,
                    },
                },
                Duration::from_micros(micros),
            )
            .expect("admitted")
            .wait();
        match result {
            Err(ServiceError::Cancelled { .. }) => {}
            Err(other) => panic!("expected Cancelled, got {other}"),
            Ok(Reply::Solved { .. }) => {
                panic!("a solve cannot beat a {micros}µs deadline on 400 nodes")
            }
            Ok(_) => panic!("unexpected reply kind"),
        }
    }
    assert_eq!(svc.stats().completed, 0);
    assert!(svc.stats().cancelled + svc.stats().expired_in_queue >= 4);
}

#[test]
fn full_tier_matches_direct_engine_solve() {
    let (g, _) = fixture(60, 5);
    let problem = msr(&g);
    let svc = VersioningService::new(MemStore::new());
    let Reply::Solved { solution, tier } = svc
        .submit_with_deadline(
            Request::Solve {
                graph: g.clone(),
                problem,
            },
            Duration::from_secs(120),
        )
        .expect("admitted")
        .wait()
        .expect("solves")
    else {
        panic!("expected Solved");
    };
    assert_eq!(tier, ServeTier::Full);
    let direct = Engine::with_default_solvers()
        .solve(&g, problem, &SolveOptions::default())
        .expect("direct solve");
    assert_eq!(
        solution.plan, direct.plan,
        "service full tier is byte-identical to a direct engine solve"
    );
}

#[test]
fn chaos_concurrent_traffic_over_faulty_store_serves_exact_bytes() {
    let (g, content) = fixture(48, 21);
    let problem = msr(&g);
    let dir = temp_dir("chaos");
    let store = FaultStore::transparent(PackStore::open(&dir).expect("open pack store"));
    let cfg = ServiceConfig {
        queue_capacity: 256,
        ..ServiceConfig::default()
    };
    let svc = VersioningService::with_config(store, cfg);

    // Solve + commit through the service itself.
    let Reply::Solved { solution, .. } = svc
        .submit_with_deadline(
            Request::Solve {
                graph: g.clone(),
                problem,
            },
            Duration::from_secs(120),
        )
        .expect("admitted")
        .wait()
        .expect("solves")
    else {
        panic!("expected Solved");
    };
    let Reply::Committed { plan, .. } = svc
        .submit_with_deadline(
            Request::Commit {
                graph: g.clone(),
                plan: solution.plan.clone(),
                source: content.clone() as Arc<dyn VersionSource + Send + Sync>,
            },
            Duration::from_secs(120),
        )
        .expect("admitted")
        .wait()
        .expect("commits")
    else {
        panic!("expected Committed");
    };
    svc.with_store_mut(|s| s.inner_mut().flush())
        .expect("flush");

    // Arm 1% transient + permanent + bit-flip faults and hammer the
    // service from several client threads.
    svc.with_store_mut(|s| {
        s.set_plan(
            FaultPlan::seeded(0xC0FFEE)
                .with_transient_get(0.01)
                .with_permanent_get(0.01)
                .with_bit_flip(0.01),
        )
    });
    let n = g.n() as u32;
    let clients = 4;
    let rounds = 12;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let svc = &svc;
            let content = &content;
            scope.spawn(move || {
                for r in 0..rounds {
                    // A deterministic per-client batch mixing hot and
                    // cold versions, duplicates included.
                    let versions: Vec<u32> = (0..8)
                        .map(|i| (c * 31 + r * 17 + i * 7) as u32 % n)
                        .collect();
                    let reply = svc
                        .submit_with_deadline(
                            Request::Checkout {
                                plan,
                                versions: versions.clone(),
                            },
                            Duration::from_secs(120),
                        )
                        .expect("capacity is generous in the chaos loop")
                        .wait()
                        .expect("serve never fails the whole batch");
                    let Reply::CheckedOut { payloads, .. } = reply else {
                        panic!("expected CheckedOut");
                    };
                    for (v, served) in versions.iter().zip(&payloads) {
                        let served = served
                            .as_ref()
                            .expect("every fault heals (retry or re-derive)");
                        assert_eq!(
                            **served,
                            content.payload(*v),
                            "byte-identical payloads under injected faults"
                        );
                    }
                }
            });
        }
    });
    let stats = svc.stats();
    assert!(
        stats.faults_detected > 0,
        "1% fault rate over {} reads must fire at least once",
        clients * rounds * 8
    );
    assert!(
        stats.repairs_applied > 0,
        "detected corruption is written back, not just served around"
    );

    // Disarm and verify the healed store serves cleanly.
    svc.with_store_mut(|s| s.set_plan(FaultPlan::none()));
    let before = svc.stats().faults_detected;
    let all: Vec<u32> = (0..n).collect();
    let Reply::CheckedOut {
        payloads, repair, ..
    } = svc
        .submit_with_deadline(
            Request::Checkout {
                plan,
                versions: all.clone(),
            },
            Duration::from_secs(120),
        )
        .expect("admitted")
        .wait()
        .expect("clean serve")
    else {
        panic!("expected CheckedOut");
    };
    assert_eq!(repair.detected, 0, "healed store has no residual faults");
    assert_eq!(svc.stats().faults_detected, before);
    for (v, served) in all.iter().zip(&payloads) {
        assert_eq!(**served.as_ref().expect("clean"), content.payload(*v));
    }
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
}
