//! Differential suite for online planning and live plan migration.
//!
//! Random mutation streams (add version, add edges, retire) run against
//! the [`OnlinePlanner`] on ER/path/tree/shard-forest fixtures: every
//! intermediate plan must validate and fit the budget, the declared
//! regret bound against from-scratch LMG-All must hold at the end of
//! every stream, and [`PlanExecutor::migrate`] must leave the store
//! byte-identical to a fresh ingest of the new plan — with GC draining
//! exactly the superseded objects. A multi-threaded service chaos loop
//! absorbs commits while checkouts are in flight and demands zero wrong
//! bytes throughout.
//!
//! Running this suite with `DSV_ONLINE_MODE=scratch` (the CI
//! `online-absorb` job does) additionally pins the escape hatch: every
//! absorb collapses to a from-scratch re-solve whose plan is
//! byte-identical to calling LMG-All directly on the mutated graph.

use dataset_versioning::core::heuristics::lmg_all::lmg_all_with_stats;
use dataset_versioning::delta::store::codec::{encode_sketch_delta, Payload};
use dataset_versioning::prelude::*;
use dataset_versioning::vgraph::generators::{
    bidirectional_path, erdos_renyi_bidirectional, random_tree, shard_forest, CostModel,
};
use std::sync::Arc;

/// Deterministic splitmix64 stream for mutation schedules.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn fixtures() -> Vec<(String, VersionGraph)> {
    let model = CostModel::default();
    let mut out = Vec::new();
    for seed in 0..2u64 {
        out.push((
            format!("er-{seed}"),
            erdos_renyi_bidirectional(24, 0.25, &model, seed),
        ));
        out.push((format!("path-{seed}"), bidirectional_path(20, &model, seed)));
        out.push((format!("tree-{seed}"), random_tree(18, &model, seed)));
    }
    out.push(("forest".into(), shard_forest(3, 8, 2, &model, 9)));
    out
}

/// Apply one random commit (a new version plus 1–2 edges to live nodes,
/// occasionally a retirement) to the planner. Returns how many mutations
/// were absorbed.
fn random_commit(p: &mut OnlinePlanner, rng: &mut Rng, step: u64) -> usize {
    let mut absorbed = 0;
    // Every third commit also retires a random still-live version.
    if step % 3 == 2 {
        let n = p.graph().n() as u64;
        for _ in 0..8 {
            let cand = NodeId(rng.below(n) as u32);
            if !p.graph().is_retired(cand) {
                p.retire_version(cand);
                absorbed += 1;
                break;
            }
        }
    }
    let storage = 5_000 + rng.below(10_000);
    let v = p.add_version(storage);
    absorbed += 1;
    let edges = 1 + rng.below(2);
    for _ in 0..edges {
        // Attach to a live (non-retired) existing node.
        let mut u = NodeId(rng.below(v.0 as u64) as u32);
        for _ in 0..8 {
            if !p.graph().is_retired(u) {
                break;
            }
            u = NodeId(rng.below(v.0 as u64) as u32);
        }
        let (s, r) = (50 + rng.below(450), 50 + rng.below(450));
        p.add_edge(u, v, s, r);
        p.add_edge(v, u, s + 10, r + 10);
        absorbed += 3; // counts both edges + the version above loosely
    }
    absorbed
}

fn assert_settled(name: &str, step: u64, p: &OnlinePlanner) {
    p.plan()
        .validate(p.graph())
        .unwrap_or_else(|e| panic!("{name} step {step}: plan invalid: {e}"));
    let costs = p.plan().costs(p.graph());
    assert_eq!(
        costs.total_retrieval,
        p.total_retrieval(),
        "{name} step {step}: tracked retrieval drifted"
    );
    assert_eq!(
        costs.storage,
        p.storage(),
        "{name} step {step}: tracked storage drifted"
    );
}

#[test]
fn mutation_streams_stay_valid_in_budget_and_bounded_regret() {
    for (name, g) in fixtures() {
        let budget = min_storage_value(&g) * 4;
        let mut p = OnlinePlanner::new(g, budget).expect("feasible fixture");
        let mut rng = Rng(0xD5EED ^ name.len() as u64);
        for step in 0..14u64 {
            random_commit(&mut p, &mut rng, step);
            if !p.within_budget() {
                // The service's degradation ladder: incremental repair
                // could not fit the budget, fall back to a full re-solve —
                // and if even that fails, the mutated instance itself must
                // be infeasible (retirements force-materialize versions
                // until min storage exceeds the frozen budget). Anything
                // else is a hole in the repair machinery.
                let refit = p.resolve_scratch();
                assert!(
                    refit || min_storage_value(p.graph()) > budget,
                    "{name} step {step}: storage {} over budget {} on a feasible instance",
                    p.storage(),
                    budget
                );
            }
            assert_settled(&name, step, &p);
        }
        // Regret gate: the path-dependent online plan stays within the
        // declared bound of a from-scratch solve on the mutated graph.
        match lmg_all_with_stats(p.graph(), budget) {
            Some((_, scratch)) => {
                let online = p.total_retrieval();
                assert!(
                    online as f64 <= ONLINE_REGRET_BOUND * (scratch.total_retrieval.max(1)) as f64,
                    "{name}: regret violated: online {online} vs scratch {}",
                    scratch.total_retrieval
                );
            }
            None => assert!(
                !p.within_budget(),
                "{name}: scratch infeasible but the online plan fits the budget"
            ),
        }
    }
}

#[test]
fn scratch_mode_is_byte_identical_to_the_oracle() {
    // Meaningful only under DSV_ONLINE_MODE=scratch (the CI online-absorb
    // job runs the suite that way); a no-op otherwise since the env var
    // is read once per process.
    if !std::env::var("DSV_ONLINE_MODE").is_ok_and(|v| v.eq_ignore_ascii_case("scratch")) {
        return;
    }
    for (name, g) in fixtures() {
        let budget = min_storage_value(&g) * 4;
        let mut p = OnlinePlanner::new(g, budget).expect("feasible fixture");
        let mut rng = Rng(0xFACE ^ name.len() as u64);
        for step in 0..8u64 {
            random_commit(&mut p, &mut rng, step);
            let Some((oracle, _)) = lmg_all_with_stats(p.graph(), budget) else {
                // Instance mutated infeasible: the oracle refuses and the
                // planner must agree it is over budget.
                assert!(!p.within_budget(), "{name} step {step}");
                continue;
            };
            assert_eq!(
                p.plan(),
                &oracle,
                "{name} step {step}: scratch mode must match the oracle byte-for-byte"
            );
        }
        assert_eq!(p.stats().scratch_solves, p.stats().absorbed);
    }
}

/// A sketch source over generated manifests: version `v` owns chunks
/// derived from `v`, overlapping with its neighbours so deltas are small.
struct StreamSource {
    manifests: Vec<Vec<(u64, u32)>>,
}

impl StreamSource {
    fn manifest(v: u64) -> Vec<(u64, u32)> {
        // 6 rolling chunks + 2 private ones: consecutive versions share
        // most content.
        let mut m: Vec<(u64, u32)> = (v..v + 6).map(|c| (c + 1, 64 + (c % 7) as u32)).collect();
        m.push((1_000 + 2 * v + 1, 128));
        m.push((1_000 + 2 * v + 2, 96));
        m
    }

    fn covering(n: usize) -> Self {
        StreamSource {
            manifests: (0..n as u64).map(Self::manifest).collect(),
        }
    }
}

impl VersionSource for StreamSource {
    fn version_count(&self) -> usize {
        self.manifests.len()
    }
    fn payload(&self, v: u32) -> Payload {
        Payload::Sketch(self.manifests[v as usize].clone())
    }
    fn delta(&self, src: u32, dst: u32) -> Vec<u8> {
        let (a, b) = (&self.manifests[src as usize], &self.manifests[dst as usize]);
        let removed: Vec<u64> = a
            .iter()
            .filter(|(id, _)| !b.iter().any(|(bid, _)| bid == id))
            .map(|&(id, _)| id)
            .collect();
        let added: Vec<(u64, u32)> = b
            .iter()
            .filter(|(id, _)| !a.iter().any(|(aid, _)| aid == id))
            .copied()
            .collect();
        encode_sketch_delta(&removed, &added)
    }
}

#[test]
fn migration_matches_fresh_ingest_and_gc_drains_exactly_the_dead() {
    let model = CostModel::default();
    let g = bidirectional_path(10, &model, 3);
    let n0 = g.n();
    let budget = min_storage_value(&g) * 4;
    let mut p = OnlinePlanner::new(g, budget).expect("feasible");

    let mut store = MemStore::new();
    let mut exec = PlanExecutor::new(&mut store);
    let mut stored = exec
        .ingest(p.graph(), p.plan(), &StreamSource::covering(n0))
        .expect("initial ingest");

    let mut rng = Rng(0xB00);
    for step in 0..8u64 {
        random_commit(&mut p, &mut rng, step);
        let n = p.graph().n();
        let source = StreamSource::covering(n);
        let (migrated, stats) = exec
            .migrate(p.graph(), &stored, p.plan(), &source)
            .expect("migrate");
        assert_eq!(stats.nodes, n);
        assert!(stats.added >= 1, "each commit adds a version");
        // Hash-verify every version against the source ground truth.
        let report = exec.execute(p.graph(), &migrated).expect("verify");
        assert_eq!(report.verified, n, "step {step}: all versions verify");
        // GC drains exactly the superseded objects: afterwards the store
        // holds precisely the live plan's distinct objects, and the plan
        // still verifies.
        exec.store().gc().expect("gc");
        let mut live: Vec<ObjectId> = migrated.objects.clone();
        live.sort_unstable();
        live.dedup();
        assert_eq!(
            exec.store().object_count(),
            live.len(),
            "step {step}: store holds exactly the live objects after gc"
        );
        let report = exec.execute(p.graph(), &migrated).expect("verify after gc");
        assert_eq!(report.verified, n);
        // Byte-identical to a fresh ingest of the same plan: the store is
        // content-addressed, so id equality pins the bytes.
        let mut fresh_store = MemStore::new();
        let fresh = PlanExecutor::new(&mut fresh_store)
            .ingest(p.graph(), p.plan(), &source)
            .expect("fresh ingest");
        assert_eq!(migrated.objects, fresh.objects, "step {step}");
        assert_eq!(migrated.source_hashes, fresh.source_hashes, "step {step}");
        stored = migrated;
    }
}

#[test]
fn service_chaos_commits_while_checkouts_fly_with_zero_wrong_bytes() {
    let model = CostModel::default();
    let g = bidirectional_path(12, &model, 5);
    let n0 = g.n();
    let budget = min_storage_value(&g) * 6;
    let plan = lmg_all(&g, budget).expect("feasible");
    let svc = Arc::new(VersioningService::new(MemStore::new()));
    let Reply::Committed { plan: id, .. } = svc
        .submit_with_deadline(
            Request::Commit {
                graph: Arc::new(g),
                plan,
                source: Arc::new(StreamSource::covering(n0)),
            },
            std::time::Duration::from_secs(60),
        )
        .expect("admitted")
        .wait()
        .expect("committed")
    else {
        panic!("expected Committed");
    };

    const COMMITS: usize = 10;
    let committer = {
        let svc = svc.clone();
        std::thread::spawn(move || {
            for i in 0..COMMITS {
                let n = n0 + i;
                let v = n as u32;
                let reply = svc
                    .submit_with_deadline(
                        Request::Absorb {
                            plan: id,
                            mutations: vec![
                                Mutation::AddVersion {
                                    storage: 6_000 + i as u64,
                                },
                                Mutation::AddEdge {
                                    src: v - 1,
                                    dst: v,
                                    storage: 120,
                                    retrieval: 100,
                                },
                                Mutation::AddEdge {
                                    src: v,
                                    dst: v - 1,
                                    storage: 130,
                                    retrieval: 110,
                                },
                            ],
                            budget,
                            source: Arc::new(StreamSource::covering(n + 1)),
                        },
                        std::time::Duration::from_secs(60),
                    )
                    .expect("admitted")
                    .wait()
                    .expect("absorbed");
                let Reply::Absorbed { versions, .. } = reply else {
                    panic!("expected Absorbed");
                };
                assert_eq!(versions, n + 1);
            }
        })
    };

    // Three reader threads hammer the initial version range (always
    // covered by every published snapshot) while commits land.
    let readers: Vec<_> = (0..3u64)
        .map(|t| {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let mut rng = Rng(0xC0FFEE + t);
                let mut served = 0usize;
                while !std::thread::panicking() && served < 120 {
                    let versions: Vec<u32> = (0..4).map(|_| rng.below(n0 as u64) as u32).collect();
                    let reply = svc
                        .submit_with_deadline(
                            Request::Checkout {
                                plan: id,
                                versions: versions.clone(),
                            },
                            std::time::Duration::from_secs(60),
                        )
                        .expect("admitted")
                        .wait()
                        .expect("served");
                    let Reply::CheckedOut { payloads, .. } = reply else {
                        panic!("expected CheckedOut");
                    };
                    for (v, p) in versions.iter().zip(&payloads) {
                        let p = p.as_ref().expect("clean store serves");
                        assert_eq!(
                            **p,
                            Payload::Sketch(StreamSource::manifest(*v as u64)),
                            "wrong bytes for v{v}"
                        );
                        served += 1;
                    }
                }
            })
        })
        .collect();

    committer.join().expect("committer");
    for r in readers {
        r.join().expect("reader");
    }

    // Final state: the plan serves every version, byte-identically.
    let all: Vec<u32> = (0..(n0 + COMMITS) as u32).collect();
    let Reply::CheckedOut { payloads, .. } = svc
        .submit_with_deadline(
            Request::Checkout {
                plan: id,
                versions: all.clone(),
            },
            std::time::Duration::from_secs(60),
        )
        .expect("admitted")
        .wait()
        .expect("served")
    else {
        panic!("expected CheckedOut");
    };
    for (v, p) in all.iter().zip(&payloads) {
        let p = p.as_ref().expect("served");
        assert_eq!(**p, Payload::Sketch(StreamSource::manifest(*v as u64)));
    }
    let stats = svc.stats();
    assert_eq!(stats.absorbed, COMMITS as u64);
}
