//! Differential suite for the **constructive** DP-BTW (the acceptance
//! gate of the provenance-arena refactor):
//!
//! * on every seeded small graph (ER, path, tree × budget sweeps) the
//!   reconstructed plan validates, fits the budget, and its total
//!   retrieval equals **both** the DP certificate and `brute_force`'s
//!   exact optimum;
//! * through the engine, `DP-BTW` solutions carry `proven_optimal == true`
//!   with `lower_bound == reported_objective == costs.total_retrieval` —
//!   there is no heuristic witness fallback on this path;
//! * a `max_states`-exceeded instance still degrades gracefully to `None`
//!   (a typed `ResourceLimit` through the engine), never to a wrong plan.

use dataset_versioning::prelude::*;
use dataset_versioning::vgraph::generators::{
    bidirectional_path, erdos_renyi_bidirectional, random_tree, series_parallel, CostModel,
};
use dsv_core::exact::brute::msr_optimum;

/// Budget sweep for one graph: just-infeasible, minimum, and a spread of
/// slacker budgets (the interesting regime where delta choices matter).
fn budget_sweep(g: &VersionGraph) -> Vec<Cost> {
    let smin = min_storage_value(g);
    vec![
        smin.saturating_sub(1),
        smin,
        smin + smin / 4,
        smin * 3 / 2,
        smin * 2,
        smin * 4,
    ]
}

/// The core differential check: certificate == reconstructed plan ==
/// brute-force optimum, at every budget in the sweep.
fn assert_constructive_exact(g: &VersionGraph, tag: &str) {
    for budget in budget_sweep(g) {
        let want = msr_optimum(g, budget);
        let cfg = BtwConfig {
            storage_prune: Some(budget),
            ..Default::default()
        };
        let result = btw_msr(g, &cfg).expect("small graphs stay within max_states");
        let certificate = result.best_under(budget);
        assert_eq!(
            certificate, want,
            "{tag} @ {budget}: certificate disagrees with brute force"
        );
        match result.plan_under(g, budget) {
            None => assert_eq!(
                want, None,
                "{tag} @ {budget}: DP found no plan on a feasible instance"
            ),
            Some((plan, (s, rho))) => {
                plan.validate(g)
                    .unwrap_or_else(|e| panic!("{tag} @ {budget}: invalid plan: {e}"));
                let costs = plan.costs(g);
                assert!(
                    costs.storage <= budget,
                    "{tag} @ {budget}: plan over budget ({})",
                    costs.storage
                );
                assert_eq!(
                    (costs.storage, costs.total_retrieval),
                    (s, rho),
                    "{tag} @ {budget}: frontier entry does not price its own plan"
                );
                assert_eq!(
                    Some(rho),
                    certificate,
                    "{tag} @ {budget}: reconstructed plan misses the certificate"
                );
            }
        }
    }
}

#[test]
fn constructive_exact_on_paths() {
    for n in [2usize, 3, 5, 7] {
        let g = bidirectional_path(n, &CostModel::default(), n as u64);
        assert_constructive_exact(&g, &format!("path-{n}"));
    }
}

#[test]
fn constructive_exact_on_random_trees() {
    for seed in 0..6 {
        let g = random_tree(7, &CostModel::default(), seed);
        assert_constructive_exact(&g, &format!("tree-{seed}"));
    }
}

#[test]
fn constructive_exact_on_er_graphs() {
    for seed in 0..8 {
        let g = erdos_renyi_bidirectional(6, 0.4, &CostModel::default(), seed);
        assert_constructive_exact(&g, &format!("er-{seed}"));
    }
}

#[test]
fn constructive_exact_on_series_parallel() {
    // Treewidth-2 but not trees: the class where DP-BTW is the only exact
    // polynomial solver in the registry.
    for seed in 0..6 {
        let g = series_parallel(4, &CostModel::default(), seed);
        if g.n() > 7 {
            continue; // keep brute force tractable
        }
        assert_constructive_exact(&g, &format!("sp-{seed}"));
    }
}

/// Through the engine: `proven_optimal` is unconditional on DP success and
/// the plan realizes the certificate — asserted across graph classes.
#[test]
fn engine_btw_solutions_are_proven_optimal() {
    let engine = Engine::with_default_solvers();
    let opts = SolveOptions::default();
    for seed in 0..4u64 {
        let graphs = [
            random_tree(8, &CostModel::default(), seed),
            erdos_renyi_bidirectional(7, 0.4, &CostModel::default(), seed + 100),
        ];
        for g in graphs {
            let smin = min_storage_value(&g);
            for budget in [smin, smin * 2] {
                let problem = ProblemKind::Msr {
                    storage_budget: budget,
                };
                let sol = engine
                    .solve_with("DP-BTW", &g, problem, &opts)
                    .expect("feasible");
                assert!(sol.meta.proven_optimal, "seed {seed} budget {budget}");
                assert_eq!(sol.meta.lower_bound, Some(sol.costs.total_retrieval));
                assert_eq!(sol.meta.reported_objective, Some(sol.costs.total_retrieval));
                assert_eq!(
                    Some(sol.costs.total_retrieval),
                    msr_optimum(&g, budget),
                    "seed {seed} budget {budget}: engine plan is not optimal"
                );
            }
        }
    }
}

/// Exceeding `max_states` must degrade gracefully: `None` from the free
/// function, a typed `ResourceLimit` from the engine — never a plan.
#[test]
fn max_states_exceeded_degrades_gracefully() {
    let g = erdos_renyi_bidirectional(16, 0.9, &CostModel::default(), 3);
    let budget = min_storage_value(&g) * 2;
    let cfg = BtwConfig {
        max_states: 50,
        storage_prune: Some(budget),
        ..Default::default()
    };
    assert!(btw_msr(&g, &cfg).is_none());

    let engine = Engine::with_default_solvers();
    let opts = SolveOptions {
        btw: BtwConfig {
            max_states: 50,
            ..Default::default()
        },
        ..Default::default()
    };
    let err = engine
        .solve_with(
            "DP-BTW",
            &g,
            ProblemKind::Msr {
                storage_budget: budget,
            },
            &opts,
        )
        .expect_err("state explosion must not produce a plan");
    assert!(
        matches!(
            err,
            SolveError::ResourceLimit {
                solver: "DP-BTW",
                ..
            }
        ),
        "{err}"
    );
}

/// A budget below the minimum-storage plan is infeasible: the constructive
/// path reports it exactly like the value path.
#[test]
fn infeasible_budgets_reconstruct_nothing() {
    let g = bidirectional_path(5, &CostModel::default(), 11);
    let smin = min_storage_value(&g);
    let cfg = BtwConfig {
        storage_prune: Some(smin - 1),
        ..Default::default()
    };
    let r = btw_msr(&g, &cfg).expect("tiny width");
    assert_eq!(r.best_under(smin - 1), None);
    assert!(r.plan_under(&g, smin - 1).is_none());

    let engine = Engine::with_default_solvers();
    let err = engine
        .solve_with(
            "DP-BTW",
            &g,
            ProblemKind::Msr {
                storage_budget: smin - 1,
            },
            &SolveOptions::default(),
        )
        .expect_err("below minimum storage");
    assert!(matches!(err, SolveError::Infeasible { .. }), "{err}");
}
