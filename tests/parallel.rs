//! Determinism and semantics of the parallel engine paths.
//!
//! The engine's contract is that parallel dispatch is an *implementation*
//! detail: racing/portfolio runs must return byte-identical plans and
//! equivalent scoreboards to the sequential path (`SolveOptions::parallel
//! = false`), whatever the pool width. These tests pin that contract
//! across seeded random graphs, plus the amortization guarantee of
//! `Engine::solve_sweep` (one DP run per sweep) and the skipped-attempt
//! marking for deadline-starved portfolios.

use dataset_versioning::prelude::*;
use dataset_versioning::vgraph::generators::{
    bidirectional_path, erdos_renyi_bidirectional, random_tree, CostModel,
};
use std::time::{Duration, Instant};

fn graphs() -> Vec<(String, VersionGraph)> {
    let mut out = Vec::new();
    for seed in 0..3 {
        out.push((
            format!("tree-{seed}"),
            random_tree(7 + seed as usize, &CostModel::default(), seed),
        ));
        out.push((
            format!("er-{seed}"),
            erdos_renyi_bidirectional(8, 0.3, &CostModel::default(), seed + 100),
        ));
    }
    out
}

fn opts(parallel: bool) -> SolveOptions {
    SolveOptions {
        parallel,
        ilp_max_nodes: 2_000,
        ..Default::default()
    }
}

fn problems(g: &VersionGraph) -> Vec<ProblemKind> {
    let smin = min_storage_value(g);
    let rmax = g.max_edge_retrieval();
    vec![
        ProblemKind::Msr {
            storage_budget: smin * 2,
        },
        ProblemKind::Mmr {
            storage_budget: smin * 2,
        },
        ProblemKind::Bmr {
            retrieval_budget: rmax,
        },
        ProblemKind::Bsr {
            retrieval_budget: rmax.saturating_mul(g.n() as u64),
        },
    ]
}

/// Portfolio: the parallel path must return a byte-identical best plan and
/// the same per-solver outcomes as the sequential path.
#[test]
fn parallel_portfolio_is_byte_identical_to_sequential() {
    let engine = Engine::with_default_solvers();
    for (name, g) in graphs() {
        for problem in problems(&g) {
            let par = engine.portfolio(&g, problem, &opts(true));
            let seq = engine.portfolio(&g, problem, &opts(false));
            match (par, seq) {
                (Ok(par), Ok(seq)) => {
                    assert_eq!(
                        par.best.plan,
                        seq.best.plan,
                        "{name}/{}: best plan differs",
                        problem.name()
                    );
                    assert_eq!(par.best.costs, seq.best.costs);
                    assert_eq!(par.best.meta.solver, seq.best.meta.solver);
                    assert_eq!(par.attempts.len(), seq.attempts.len());
                    for (a, b) in par.attempts.iter().zip(&seq.attempts) {
                        assert_eq!(a.solver, b.solver, "{name}: registry order differs");
                        match (&a.outcome, &b.outcome) {
                            (AttemptOutcome::Solved(ca), AttemptOutcome::Solved(cb)) => {
                                assert_eq!(ca, cb, "{name}/{}: {}", problem.name(), a.solver)
                            }
                            (AttemptOutcome::Failed(_), AttemptOutcome::Failed(_)) => {}
                            (pa, pb) => panic!(
                                "{name}/{}: {} outcome kind differs: {pa:?} vs {pb:?}",
                                problem.name(),
                                a.solver
                            ),
                        }
                    }
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(
                        std::mem::discriminant(&ea),
                        std::mem::discriminant(&eb),
                        "{name}/{}: error kind differs",
                        problem.name()
                    );
                }
                (par, seq) => panic!(
                    "{name}/{}: feasibility differs: parallel {:?} vs sequential {:?}",
                    problem.name(),
                    par.map(|p| p.best.costs),
                    seq.map(|p| p.best.costs),
                ),
            }
        }
    }
}

/// Racing solve: first-feasible short-circuiting must preserve sequential
/// first-success semantics exactly.
#[test]
fn parallel_solve_matches_sequential_dispatch() {
    let engine = Engine::with_default_solvers();
    for (name, g) in graphs() {
        for problem in problems(&g) {
            let par = engine.solve(&g, problem, &opts(true));
            let seq = engine.solve(&g, problem, &opts(false));
            match (par, seq) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.plan, b.plan, "{name}/{}: plan differs", problem.name());
                    assert_eq!(a.meta.solver, b.meta.solver, "{name}/{}", problem.name());
                    assert_eq!(a.costs, b.costs);
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(std::mem::discriminant(&ea), std::mem::discriminant(&eb));
                }
                (a, b) => panic!(
                    "{name}/{}: feasibility differs: {a:?} vs {b:?}",
                    problem.name(),
                    a = a.map(|s| s.costs),
                    b = b.map(|s| s.costs),
                ),
            }
        }
    }
}

/// `solve_sweep` answers N budgets from exactly one DP-MSR run, asserted
/// via the surfaced run count and the identical per-solution iteration
/// metadata, and agrees with the free-function sweep it wraps.
#[test]
fn solve_sweep_performs_exactly_one_dp_run() {
    let engine = Engine::with_default_solvers();
    let g = bidirectional_path(24, &CostModel::default(), 7);
    let smin = min_storage_value(&g);
    let budgets: Vec<Cost> = (0..16).map(|i| smin + smin * i / 8).collect();

    let sweep = engine
        .solve_sweep(&g, &budgets, &SolveOptions::default())
        .expect("connected graph");
    assert_eq!(sweep.dp_runs, 1, "a sweep must cost exactly one DP run");
    assert_eq!(sweep.solutions.len(), budgets.len());

    let iteration_counts: Vec<usize> = sweep
        .solutions
        .iter()
        .flatten()
        .map(|s| s.meta.iterations)
        .collect();
    assert!(!iteration_counts.is_empty());
    assert!(
        iteration_counts.windows(2).all(|w| w[0] == w[1]),
        "all sweep solutions must report the single shared DP's state count"
    );

    // Parity with the algorithm-layer sweep (identical costs per budget).
    let direct =
        dp_msr_sweep(&g, NodeId(0), &budgets, &DpMsrConfig::default()).expect("connected graph");
    for ((b, sol), direct) in budgets.iter().zip(&sweep.solutions).zip(direct) {
        match (sol, direct) {
            (Some(sol), Some(costs)) => {
                sol.plan.validate(&g).expect("sweep plan valid");
                assert!(sol.costs.storage <= *b, "budget {b} violated");
                assert_eq!(sol.costs, costs, "budget {b}: engine vs direct sweep");
                assert_eq!(sol.meta.solver, "DP-MSR");
            }
            (None, None) => {}
            (sol, direct) => {
                panic!("budget {b}: feasibility differs: {sol:?} vs {direct:?}")
            }
        }
    }

    // Retrieval is non-increasing along growing budgets.
    let retrievals: Vec<Cost> = sweep
        .solutions
        .iter()
        .flatten()
        .map(|s| s.costs.total_retrieval)
        .collect();
    assert!(retrievals.windows(2).all(|w| w[1] <= w[0]));
}

/// A solver that sleeps, then delegates to LMG — used to burn through the
/// deadline deterministically.
struct SleepyLmg(Duration);

impl Solver for SleepyLmg {
    fn name(&self) -> &'static str {
        "sleepy"
    }
    fn supports(&self, problem: ProblemKind) -> bool {
        matches!(problem, ProblemKind::Msr { .. })
    }
    fn solve(
        &self,
        g: &VersionGraph,
        problem: ProblemKind,
        opts: &SolveOptions,
    ) -> Result<Solution, SolveError> {
        std::thread::sleep(self.0);
        let engine = Engine::with_default_solvers();
        engine.solve_with("LMG", g, problem, opts)
    }
}

/// Deadline-starved portfolio attempts are marked `Skipped` (never a
/// zero-duration timeout): the first solver finishes in time, the second
/// burns past the deadline, the third is skipped without starting.
#[test]
fn deadline_starved_attempts_are_skipped_not_zero_duration_timeouts() {
    let g = random_tree(8, &CostModel::default(), 3);
    let smin = min_storage_value(&g);
    let problem = ProblemKind::Msr {
        storage_budget: smin * 2,
    };
    let mut engine = Engine::new();
    engine
        .register(Box::new(SleepyLmg(Duration::ZERO)))
        .register(Box::new(SleepyLmg(Duration::from_millis(80))))
        .register(Box::new(SleepyLmg(Duration::ZERO)));
    let solve_opts = SolveOptions {
        time_limit: Some(Duration::from_millis(30)),
        parallel: false, // deterministic ordering for the deadline walk
        ..Default::default()
    };
    let portfolio = engine
        .portfolio(&g, problem, &solve_opts)
        .expect("first solver finishes before the deadline");
    assert_eq!(portfolio.attempts.len(), 3);
    assert!(portfolio.attempts[0].outcome.is_ok());
    // The second ran (started before the deadline), whatever its outcome.
    assert!(!portfolio.attempts[1].outcome.is_skipped());
    // The third was never started: explicitly skipped, not a fake timeout.
    assert!(
        portfolio.attempts[2].outcome.is_skipped(),
        "expected Skipped, got {:?}",
        portfolio.attempts[2].outcome
    );
    assert_eq!(portfolio.attempts[2].wall_time, Duration::ZERO);
}

/// Reusing one `SolveOptions` (and thus one `SharedWork` memo) across
/// *different* graphs must never serve a cached plan from the wrong graph
/// — the engine re-validates the memo's graph fingerprint on every entry
/// point, `solve_with` included.
#[test]
fn shared_work_memo_never_leaks_across_graphs() {
    let g1 = random_tree(9, &CostModel::default(), 21);
    let g2 = random_tree(9, &CostModel::default(), 22);
    // One budget feasible on both graphs → identical memo key on purpose.
    let budget = min_storage_value(&g1).max(min_storage_value(&g2)) * 2;
    let problem = ProblemKind::Msr {
        storage_budget: budget,
    };
    let engine = Engine::with_default_solvers();
    let shared_opts = SolveOptions::default();
    for g in [&g1, &g2] {
        let sol = engine
            .solve_with("LMG-All", g, problem, &shared_opts)
            .expect("feasible");
        sol.plan.validate(g).expect("plan belongs to this graph");
        let direct = lmg_all(g, budget).expect("feasible");
        assert_eq!(sol.plan, direct, "cached plan leaked across graphs");
    }
}

/// An externally fired token preempts the whole call up front.
#[test]
fn pre_fired_cancel_token_skips_everything() {
    let g = random_tree(8, &CostModel::default(), 5);
    let smin = min_storage_value(&g);
    let problem = ProblemKind::Msr {
        storage_budget: smin * 2,
    };
    let engine = Engine::with_default_solvers();
    let cancel = CancelToken::new();
    cancel.cancel();
    let solve_opts = SolveOptions {
        cancel,
        ..Default::default()
    };
    let err = engine
        .solve(&g, problem, &solve_opts)
        .expect_err("cancelled before start");
    assert!(
        matches!(err, SolveError::Cancelled { .. }),
        "expected Cancelled, got {err}"
    );
}

/// The cooperative deadline preempts a *running* DP mid-run (not just
/// between solvers): a zero deadline makes the DP-MSR solver abort from
/// inside its per-node polling loop.
#[test]
fn running_solvers_poll_the_deadline_token() {
    let g = random_tree(60, &CostModel::default(), 11);
    let smin = min_storage_value(&g);
    let engine = Engine::with_default_solvers();
    let solve_opts = SolveOptions {
        time_limit: Some(Duration::ZERO),
        ..Default::default()
    };
    let t0 = Instant::now();
    let err = engine
        .solve_sweep(&g, &[smin * 2], &solve_opts)
        .expect_err("zero deadline");
    assert!(
        matches!(err, SolveError::Timeout { .. }),
        "expected Timeout, got {err}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "preemption must abort promptly"
    );
}
