//! Batched checkout integration: the serving read path.
//!
//! This suite pins the checkout layer's contract:
//!
//! * a batched checkout returns payloads **byte-identical** to
//!   one-at-a-time checkouts and to the source content, across natural
//!   (path/tree-like) and Erdős–Rényi fixtures on both backends;
//! * cache hits return bytes identical to cold reconstructions
//!   (property loop over seeded request streams);
//! * the content-level hash used for verification equals the
//!   `source_hashes` recorded at ingest (no `encode_payload` round-trip);
//! * `PackStore`'s resident pack map is invalidated by append and GC —
//!   it never serves stale slices;
//! * the read path is `&self`-shareable: concurrent checkouts against
//!   one reader and one cache agree with the source.

use dataset_versioning::prelude::*;
use dsv_core::checkout::{Checkout, CheckoutCache};
use dsv_core::executor::PlanExecutor;
use dsv_delta::store::codec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "dsv-checkout-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Natural corpora (path/tree-shaped retrieval forests under MSR plans)
/// plus an ER graph over sketch content (unnatural delta pairs).
fn fixtures() -> Vec<(&'static str, VersionGraph, CorpusContent)> {
    let mut out = Vec::new();
    let c = corpus_with_content(CorpusName::Datasharing, 1.0, 31, true);
    out.push(("datasharing", c.graph, c.content.expect("content")));
    let c = corpus_with_content(CorpusName::Icu996, 0.015, 32, true);
    out.push(("icu996", c.graph, c.content.expect("content")));
    let lc = corpus_with_content(CorpusName::LeetCodeAnimation, 0.05, 33, true);
    let sketches = lc.sketches().expect("sketch corpus").to_vec();
    let g = erdos_renyi_from_sketches(&sketches, 0.3, 34);
    out.push(("leetcode-er", g, CorpusContent::Sketch { sketches }));
    out
}

fn msr_plan(g: &VersionGraph, solver: &str) -> StoragePlan {
    let engine = Engine::with_default_solvers();
    let problem = ProblemKind::Msr {
        storage_budget: min_storage_value(g) * 2,
    };
    engine
        .solve_with(solver, g, problem, &SolveOptions::default())
        .expect("solve")
        .plan
}

/// Batched checkout == one-at-a-time checkout == source content, for
/// every version, on both backends, across fixture shapes and solvers.
#[test]
fn batched_checkout_matches_one_at_a_time_and_source() {
    for (label, g, content) in fixtures() {
        let n = g.n();
        let expected: Vec<_> = (0..n as u32).map(|v| content.payload(v)).collect();
        for solver in ["LMG", "DP-MSR"] {
            let plan = msr_plan(&g, solver);

            let mut mem = MemStore::new();
            let stored_mem = PlanExecutor::new(&mut mem)
                .ingest(&g, &plan, &content)
                .expect("mem ingest");
            let dir = temp_dir(label);
            let mut pack = PackStore::open(&dir).expect("open pack");
            let stored_pack = PlanExecutor::new(&mut pack)
                .ingest(&g, &plan, &content)
                .expect("pack ingest");

            let all: Vec<u32> = (0..n as u32).collect();
            // MemStore backend.
            {
                let reader = Checkout::new(&mem);
                let batch = reader.checkout(&g, &stored_mem, &all).expect("batched");
                assert_eq!(batch.payloads.len(), n);
                for (v, exp) in expected.iter().enumerate() {
                    assert_eq!(
                        *batch.payloads[v], *exp,
                        "{solver} on {label} (mem): batched v{v}"
                    );
                    let one = reader
                        .checkout(&g, &stored_mem, &[v as u32])
                        .expect("one at a time");
                    assert_eq!(
                        one.payloads[0], batch.payloads[v],
                        "{solver} on {label} (mem): one-at-a-time v{v}"
                    );
                }
                assert_eq!(batch.stats.hydrated, n, "union of all chains is all nodes");
            }
            // PackStore backend.
            {
                let reader = Checkout::new(&pack);
                let batch = reader.checkout(&g, &stored_pack, &all).expect("batched");
                for (v, exp) in expected.iter().enumerate() {
                    assert_eq!(
                        *batch.payloads[v], *exp,
                        "{solver} on {label} (pack): batched v{v}"
                    );
                }
            }

            drop(pack);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The content-level hash used for verification is pinned to the
/// `source_hashes` the executor records at ingest (which hash the
/// *encoded* payload bytes) — the regression test for dropping the
/// `encode_payload` round-trip.
#[test]
fn hash_payload_pins_to_ingested_source_hashes() {
    for (label, g, content) in fixtures() {
        let plan = msr_plan(&g, "LMG");
        let mut mem = MemStore::new();
        let stored = PlanExecutor::new(&mut mem)
            .ingest(&g, &plan, &content)
            .expect("ingest");
        for v in 0..g.n() as u32 {
            assert_eq!(
                codec::hash_payload(&content.payload(v)),
                stored.source_hashes[v as usize],
                "{label}: content-level hash of v{v} must equal the ingest hash"
            );
        }
    }
}

/// Property loop: random batch streams served through a cache return
/// bytes identical to cold reconstructions, duplicates included, and the
/// cache actually hits.
#[test]
fn cached_checkouts_identical_to_cold_property_loop() {
    let (_, g, content) = fixtures().swap_remove(0);
    let n = g.n();
    let expected: Vec<_> = (0..n as u32).map(|v| content.payload(v)).collect();
    let plan = msr_plan(&g, "LMG");
    let mut mem = MemStore::new();
    let stored = PlanExecutor::new(&mut mem)
        .ingest(&g, &plan, &content)
        .expect("ingest");

    let mut rng = SmallRng::seed_from_u64(99);
    let cache = CheckoutCache::new(expected.iter().map(|p| p.content_size()).sum::<u64>() / 3 + 1);
    let cold = Checkout::new(&mem);
    let cached = Checkout::new(&mem).with_cache(&cache);
    for round in 0..40 {
        let len = rng.gen_range(1..=24usize);
        let batch: Vec<u32> = (0..len).map(|_| rng.gen_range(0..n as u32)).collect();
        let warm = cached.checkout(&g, &stored, &batch).expect("cached");
        let chill = cold.checkout(&g, &stored, &batch).expect("cold");
        assert_eq!(warm.payloads.len(), batch.len());
        for (i, &v) in batch.iter().enumerate() {
            assert_eq!(
                *warm.payloads[i], expected[v as usize],
                "round {round}: cached v{v}"
            );
            assert_eq!(
                warm.payloads[i], chill.payloads[i],
                "round {round}: cached vs cold v{v}"
            );
        }
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "hot versions must hit the cache: {stats:?}");
    assert!(stats.admitted > 0);
    assert!(
        cache.used_bytes() <= cache.capacity_bytes(),
        "cache must respect its byte budget"
    );
}

/// Pack-map invalidation: reads through the resident pack map stay
/// byte-correct across appends (new plan ingested) and GC (old plan
/// collected) — stale slices are never served.
#[test]
fn pack_resident_map_never_serves_stale_slices() {
    let c = corpus_with_content(CorpusName::Datasharing, 1.0, 41, true);
    let g = c.graph;
    let content = c.content.expect("content");
    let n = g.n();
    let expected: Vec<_> = (0..n as u32).map(|v| content.payload(v)).collect();
    let all: Vec<u32> = (0..n as u32).collect();

    let dir = temp_dir("invalidate");
    let mut pack = PackStore::open(&dir).expect("open pack");
    let plan_a = msr_plan(&g, "LMG");
    let stored_a = PlanExecutor::new(&mut pack)
        .ingest(&g, &plan_a, &content)
        .expect("ingest A");

    // Serve A: this faults in the resident pack map.
    let out = Checkout::new(&pack)
        .checkout(&g, &stored_a, &all)
        .expect("serve A");
    assert!(pack.resident_loaded(), "first batched read loads the map");
    for (v, exp) in expected.iter().enumerate() {
        assert_eq!(*out.payloads[v], *exp);
    }

    // Append plan B (different forest, overlapping objects): the packed
    // appends invalidate the map; reads of BOTH plans must stay correct.
    let plan_b = msr_plan(&g, "DP-MSR");
    let stored_b = PlanExecutor::new(&mut pack)
        .ingest(&g, &plan_b, &content)
        .expect("ingest B");
    for (tag, stored) in [("A", &stored_a), ("B", &stored_b)] {
        let out = Checkout::new(&pack)
            .checkout(&g, stored, &all)
            .expect("serve after append");
        for (v, exp) in expected.iter().enumerate() {
            assert_eq!(*out.payloads[v], *exp, "plan {tag} v{v} after append");
        }
    }

    // Release A and compact: offsets move, the map is invalidated again;
    // B must still serve byte-identical content.
    PlanExecutor::new(&mut pack)
        .release(&stored_a)
        .expect("release A");
    pack.gc().expect("gc");
    let out = Checkout::new(&pack)
        .checkout(&g, &stored_b, &all)
        .expect("serve B after gc");
    for (v, exp) in expected.iter().enumerate() {
        assert_eq!(*out.payloads[v], *exp, "plan B v{v} after gc");
    }

    drop(pack);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The read path is `&self`-shareable: concurrent threads serving
/// overlapping batches through one reader and one shared cache all see
/// source-identical bytes.
#[test]
fn concurrent_checkouts_share_one_reader_and_cache() {
    let (_, g, content) = fixtures().swap_remove(0);
    let n = g.n();
    let expected: Vec<_> = (0..n as u32).map(|v| content.payload(v)).collect();
    let plan = msr_plan(&g, "LMG");
    let mut mem = MemStore::new();
    let stored = PlanExecutor::new(&mut mem)
        .ingest(&g, &plan, &content)
        .expect("ingest");

    let cache = CheckoutCache::new(1 << 20);
    let reader = Checkout::new(&mem).with_cache(&cache);
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let reader = &reader;
            let g = &g;
            let stored = &stored;
            let expected = &expected;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(1000 + t);
                for _ in 0..10 {
                    let batch: Vec<u32> = (0..16).map(|_| rng.gen_range(0..n as u32)).collect();
                    let out = reader.checkout(g, stored, &batch).expect("checkout");
                    for (i, &v) in batch.iter().enumerate() {
                        assert_eq!(*out.payloads[i], expected[v as usize]);
                    }
                }
            });
        }
    });
}
