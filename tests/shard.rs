//! Differential suite for the sharded hierarchical solving path.
//!
//! Pins the contract of `sharded_msr` / `ShardedSolver` against the
//! whole-graph solvers it approximates:
//!
//! * every stitched plan validates and fits the MSR budget on multi-shard
//!   fixtures (multi-component forests and single-component merged ones);
//! * the sharded objective stays within the declared `SHARD_REGRET_BOUND`
//!   of a whole-graph LMG-All solve of the same instance;
//! * plans are byte-identical across thread-pool widths (1 vs 4) — the
//!   parallel shard fan-out is an implementation detail;
//! * a graph that yields a single shard reduces *exactly* to the
//!   whole-graph solve;
//! * engine dispatch: `ShardedSolver` wins at scale, refuses below its
//!   threshold with a deterministic `ResourceLimit`, and never disturbs
//!   small-graph dispatch.

use dataset_versioning::prelude::*;
use dataset_versioning::vgraph::generators::{shard_forest, CostModel};
use dsv_core::heuristics::lmg_all::lmg_all_with_stats;

fn cfg(max_shard_nodes: usize) -> ShardConfig {
    ShardConfig {
        max_shard_nodes,
        min_graph_nodes: 0,
    }
}

/// Fixtures: (name, graph) pairs covering disconnected forests, a single
/// merged component, and branchy clusters with chords.
fn fixtures() -> Vec<(String, VersionGraph)> {
    let model = CostModel::default();
    vec![
        (
            "forest-disconnected".into(),
            shard_forest(6, 40, 0, &model, 1),
        ),
        ("forest-linked".into(), shard_forest(6, 40, 12, &model, 2)),
        (
            "forest-dense-links".into(),
            shard_forest(4, 60, 40, &model, 3),
        ),
        (
            "forest-many-small".into(),
            shard_forest(12, 15, 24, &model, 4),
        ),
    ]
}

/// A budget both pipelines can use: half the materialize-all cost, which
/// dominates every shard's minimum storage under the default cost model.
fn budget_for(g: &VersionGraph) -> Cost {
    StoragePlan::materialize_all(g).storage_cost(g) / 2
}

#[test]
fn sharded_plans_validate_and_fit_budget_on_fixtures() {
    for (name, g) in fixtures() {
        let budget = budget_for(&g);
        let (plan, stats) = sharded_msr(&g, budget, &cfg(48), &CancelToken::inert())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        plan.validate(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            plan.storage_cost(&g) <= budget,
            "{name}: storage exceeds budget"
        );
        assert!(stats.shards > 1, "{name}: fixtures must actually shard");
        assert!(
            stats.largest_shard <= 48,
            "{name}: shard size bound violated"
        );
    }
}

#[test]
fn sharded_objective_within_regret_bound_of_whole_graph_lmg_all() {
    for (name, g) in fixtures() {
        let budget = budget_for(&g);
        let (_, stats) =
            sharded_msr(&g, budget, &cfg(48), &CancelToken::inert()).expect("feasible");
        let (_, whole) = lmg_all_with_stats(&g, budget).expect("feasible");
        let bound = (whole.total_retrieval as f64 * SHARD_REGRET_BOUND).ceil() as Cost;
        assert!(
            stats.total_retrieval <= bound,
            "{name}: sharded {} vs whole-graph {} breaks the {SHARD_REGRET_BOUND}x regret bound",
            stats.total_retrieval,
            whole.total_retrieval,
        );
    }
}

#[test]
fn plans_byte_identical_across_thread_counts() {
    let g = shard_forest(8, 40, 16, &CostModel::default(), 7);
    let budget = budget_for(&g);
    let solve = || {
        sharded_msr(&g, budget, &cfg(48), &CancelToken::inert())
            .expect("feasible")
            .0
    };
    let mut plans = Vec::new();
    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        plans.push(pool.install(solve));
    }
    assert_eq!(
        plans[0], plans[1],
        "sharded plan differs between 1 and 4 threads"
    );
}

#[test]
fn single_shard_graph_reduces_exactly_to_whole_graph_solve() {
    // One 50-node cluster, shard cap far above it: the partition yields a
    // single shard and the result must be the whole-graph LMG-All plan.
    let g = shard_forest(1, 50, 0, &CostModel::default(), 13);
    let budget = budget_for(&g);
    let (plan, stats) =
        sharded_msr(&g, budget, &cfg(4_096), &CancelToken::inert()).expect("feasible");
    let (whole, _) = lmg_all_with_stats(&g, budget).expect("feasible");
    assert_eq!(plan, whole);
    assert_eq!(stats.shards, 1);
    assert_eq!(stats.cut_edges, 0);
    assert_eq!(stats.coarse_deltas, 0);
}

#[test]
fn engine_prefers_sharded_at_scale_and_ignores_it_below_threshold() {
    // At scale (threshold lowered to the fixture size): Sharded-LMG wins.
    let g = shard_forest(6, 40, 12, &CostModel::default(), 21);
    let mut engine = Engine::new();
    engine.register(Box::new(ShardedSolver {
        config: ShardConfig {
            max_shard_nodes: 48,
            min_graph_nodes: g.n(),
        },
    }));
    let problem = ProblemKind::Msr {
        storage_budget: budget_for(&g),
    };
    let sol = engine
        .solve(&g, problem, &SolveOptions::default())
        .expect("feasible");
    assert_eq!(sol.meta.solver, "Sharded-LMG");
    sol.plan.validate(&g).expect("valid");

    // Below threshold: the default registry's sharded entry refuses and a
    // whole-graph solver answers instead.
    let small = shard_forest(2, 10, 2, &CostModel::default(), 22);
    let engine = Engine::with_default_solvers();
    let problem = ProblemKind::Msr {
        storage_budget: budget_for(&small),
    };
    let sol = engine
        .solve(&small, problem, &SolveOptions::default())
        .expect("feasible");
    assert_ne!(sol.meta.solver, "Sharded-LMG");
}

#[test]
fn partition_surface_is_reachable_from_the_prelude() {
    // The prelude re-exports the partition + sharding surface; exercise it
    // end to end: partition with the treewidth splitter, validate, check
    // CSR accessors.
    let g = shard_forest(3, 30, 6, &CostModel::default(), 17);
    let p = partition_graph(&g, 24, &split_component);
    p.validate(&g).expect("valid partition");
    assert!(p.max_shard_len() <= 24);
    let comps: Components = g.connected_components();
    assert!(!comps.is_empty());
    for members in p.iter() {
        assert!(!members.is_empty());
    }
}
