//! Property-based tests (proptest) over the core invariants.
//!
//! Random small version graphs are generated structurally (so every case is
//! connected and solvable), then every algorithm is checked against the
//! definitions and against the brute-force optimum where tractable.

use dataset_versioning::prelude::*;
use proptest::prelude::*;

/// A *simple* bidirectional tree: underlying tree shape and at most one
/// directed edge per ordered pair. The tree DPs commit to one delta per
/// direction between tree neighbours (like the paper's model), so exactness
/// comparisons against brute force require simple graphs — with parallel
/// edges, brute force may pick a different (storage, retrieval) trade-off
/// per edge than the extraction kept.
fn is_simple_bidir_tree(g: &VersionGraph) -> bool {
    if !g.underlying_is_tree() {
        return false;
    }
    let mut seen = std::collections::HashSet::new();
    g.edges().iter().all(|e| seen.insert((e.src, e.dst)))
}

/// Strategy: a random connected bidirectional version graph with `n ≤ 7`
/// nodes (brute-force friendly) built from a random tree plus extra edges.
fn small_graph() -> impl Strategy<Value = VersionGraph> {
    (
        2usize..7,
        proptest::collection::vec(1u64..2_000, 7),
        proptest::collection::vec((0usize..7, 0usize..7, 1u64..300, 1u64..300), 0..6),
        proptest::collection::vec((1u64..300, 1u64..300), 12),
        any::<u64>(),
    )
        .prop_map(|(n, node_costs, extra, tree_costs, seed)| {
            let mut g = VersionGraph::new();
            for i in 0..n {
                g.add_node(node_costs[i % node_costs.len()].max(1));
            }
            // Random spanning tree (deterministic from seed).
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for i in 1..n {
                let p = (next() as usize) % i;
                let (s1, r1) = tree_costs[(2 * i) % tree_costs.len()];
                let (s2, r2) = tree_costs[(2 * i + 1) % tree_costs.len()];
                g.add_edge(NodeId::new(p), NodeId::new(i), s1, r1);
                g.add_edge(NodeId::new(i), NodeId::new(p), s2, r2);
            }
            for (u, v, s, r) in extra {
                if u % n != v % n {
                    g.add_edge(NodeId::new(u % n), NodeId::new(v % n), s, r);
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heuristics_are_feasible_and_bounded_by_optimum(g in small_graph(), mult in 1u64..5) {
        let smin = min_storage_value(&g);
        let budget = smin.saturating_mul(mult);
        let opt = brute_force(&g, ProblemKind::Msr { storage_budget: budget });
        let opt_obj = opt.expect("budget >= smin is feasible").costs.total_retrieval;
        for plan in [lmg(&g, budget), lmg_all(&g, budget)].into_iter().flatten() {
            plan.validate(&g).expect("valid");
            let c = plan.costs(&g);
            prop_assert!(c.storage <= budget);
            prop_assert!(c.total_retrieval >= opt_obj);
        }
    }

    #[test]
    fn dp_msr_exact_engine_matches_brute_force_on_trees(g in small_graph(), mult in 1u64..4) {
        // Restrict to the extracted tree == whole graph case: drop extra
        // edges by rebuilding only when the graph is a tree.
        prop_assume!(is_simple_bidir_tree(&g));
        let smin = min_storage_value(&g);
        let budget = smin.saturating_mul(mult);
        let t = extract_tree(&g, NodeId(0)).expect("trees are connected");
        let dp = dsv_core::tree::msr_tree_exact(&g, &t);
        let got = dp.best_under(budget).map(|(_, r)| r);
        let want = brute_force(&g, ProblemKind::Msr { storage_budget: budget })
            .map(|r| r.costs.total_retrieval);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dp_bmr_matches_brute_force_on_trees(g in small_graph(), budget in 0u64..3_000) {
        prop_assume!(is_simple_bidir_tree(&g));
        let r = dp_bmr_on_graph(&g, NodeId(0), budget).expect("connected");
        r.plan.validate(&g).expect("valid");
        let c = r.plan.costs(&g);
        prop_assert!(c.max_retrieval <= budget);
        prop_assert_eq!(c.storage, r.storage);
        let want = brute_force(&g, ProblemKind::Bmr { retrieval_budget: budget })
            .expect("BMR always feasible")
            .costs
            .storage;
        prop_assert_eq!(r.storage, want);
    }

    #[test]
    fn modified_prims_respects_budget_on_any_graph(g in small_graph(), budget in 0u64..5_000) {
        let plan = modified_prims(&g, budget);
        plan.validate(&g).expect("valid");
        prop_assert!(plan.costs(&g).max_retrieval <= budget);
    }

    #[test]
    fn ilp_matches_brute_force(g in small_graph(), mult in 1u64..4) {
        // The unoptimized simplex is ~20x slower; keep debug runs tractable
        // by skipping the densest random instances there.
        prop_assume!(!cfg!(debug_assertions) || g.m() <= 14);
        let smin = min_storage_value(&g);
        let budget = smin.saturating_mul(mult);
        let want = brute_force(&g, ProblemKind::Msr { storage_budget: budget })
            .expect("feasible")
            .costs
            .total_retrieval;
        let got = msr_opt(&g, budget, 400_000, None).expect("feasible");
        prop_assert!(got.proven_optimal);
        prop_assert_eq!(got.total_retrieval, want);
    }

    #[test]
    fn checkpoint_plans_are_always_valid(g in small_graph(), k in 1usize..5) {
        let plan = checkpoint_plan(&g, k);
        plan.validate(&g).expect("valid");
        // Checkpointing only ever adds materializations over min storage.
        prop_assert!(plan.materialized_count() >= 1);
    }

    #[test]
    fn min_storage_plan_is_the_cheapest_plan(g in small_graph()) {
        let smin = min_storage_value(&g);
        let mut cheapest = u64::MAX;
        dsv_core::exact::brute::for_each_plan(&g, |_, costs| {
            cheapest = cheapest.min(costs.storage);
        });
        prop_assert_eq!(smin, cheapest);
    }

    #[test]
    fn plan_costs_are_internally_consistent(g in small_graph()) {
        let plan = min_storage_plan(&g);
        let costs = plan.costs(&g);
        let r = plan.retrievals(&g);
        prop_assert_eq!(costs.total_retrieval, r.iter().sum::<u64>());
        prop_assert_eq!(costs.max_retrieval, r.iter().copied().max().unwrap_or(0));
        // Materialized nodes retrieve for free; delta nodes cost at least
        // their own edge.
        for (v, p) in plan.parent.iter().enumerate() {
            match p {
                Parent::Materialized => prop_assert_eq!(r[v], 0),
                Parent::Delta(e) => prop_assert!(r[v] >= g.edge(*e).retrieval),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mmr_reduction_matches_brute_force_on_trees(g in small_graph(), mult in 1u64..4) {
        prop_assume!(is_simple_bidir_tree(&g));
        let smin = min_storage_value(&g);
        let budget = smin.saturating_mul(mult);
        let want = brute_force(&g, ProblemKind::Mmr { storage_budget: budget })
            .expect("feasible")
            .costs
            .max_retrieval;
        let (_, got) = mmr_on_graph(&g, NodeId(0), budget).expect("feasible");
        prop_assert_eq!(got, want);
    }

    #[test]
    fn myers_diff_roundtrip(a in proptest::collection::vec(0u32..6, 0..40),
                            b in proptest::collection::vec(0u32..6, 0..40)) {
        let ops = dsv_delta::myers::diff(&a, &b);
        prop_assert_eq!(dsv_delta::myers::apply(&a, &b, &ops), b);
    }

    #[test]
    fn sketch_deltas_satisfy_triangle_inequality(
        ids in proptest::collection::vec((0u64..30, 1u32..100), 1..25),
        split in any::<u64>(),
    ) {
        use dsv_delta::chunks::ChunkSketch;
        // Derive three overlapping sketches from one chunk pool. Chunk ids
        // are content addresses: one id must always map to one size, so
        // dedup the generated pool first.
        let pool: std::collections::BTreeMap<u64, u32> = ids.iter().copied().collect();
        let mut u = ChunkSketch::new();
        let mut v = ChunkSketch::new();
        let mut w = ChunkSketch::new();
        for (i, (&id, &sz)) in pool.iter().enumerate() {
            let h = split.rotate_left(i as u32 % 64) & 7;
            if h & 1 != 0 { u.insert(id, sz); }
            if h & 2 != 0 { v.insert(id, sz); }
            if h & 4 != 0 { w.insert(id, sz); }
        }
        let uv = u.delta_to(&v).storage_cost();
        let vw = v.delta_to(&w).storage_cost();
        let uw = u.delta_to(&w).storage_cost();
        prop_assert!(uw <= uv + vw);
        // Retrieval costs behave the same way.
        let uv = u.delta_to(&v).retrieval_cost();
        let vw = v.delta_to(&w).retrieval_cost();
        let uw = u.delta_to(&w).retrieval_cost();
        prop_assert!(uw <= uv + vw);
    }
}
