//! Quality side of the Section-6.2 ablations: the paper claims the
//! practical modifications (geometric discretization, storage indexing,
//! pruning) "show comparable results but significantly improve the running
//! time". Here we verify the *comparable results* part: coarsened
//! configurations must stay within bounded factors of the exact optimum,
//! and each lever must degrade gracefully.

use dataset_versioning::prelude::*;
use dsv_core::tree::msr_engine::{run_tree_msr, GammaGrid, TreeDpConfig};
use dsv_vgraph::generators::{caterpillar, random_tree, CostModel};

fn quality_at(g: &VersionGraph, cfg: TreeDpConfig, budget: Cost) -> Option<u64> {
    let t = extract_tree(g, NodeId(0))?;
    let dp = run_tree_msr(g, &t, cfg);
    // Reconstruct and re-cost exactly, like the experiments do.
    dp.plan_under(budget)
        .map(|(plan, _)| plan.costs(g).total_retrieval)
}

#[test]
fn gamma_grid_coarseness_degrades_gracefully() {
    let g = random_tree(40, &CostModel::default(), 3);
    let smin = min_storage_value(&g);
    let budget = smin * 2;
    let exact = quality_at(&g, TreeDpConfig::exact(), budget).expect("feasible");
    let mut last_quality = exact;
    for tick_shift in [0u32, 2, 4, 6] {
        let mut cfg = TreeDpConfig::heuristic(&g, Some(budget));
        if let GammaGrid::Linear(t) = cfg.gamma {
            cfg.gamma = GammaGrid::Linear(t << tick_shift);
        }
        let got = quality_at(&g, cfg, budget).expect("feasible");
        // Never better than exact; within 2x even at very coarse ticks.
        assert!(got >= exact);
        assert!(
            got as f64 <= exact as f64 * 2.0 + 1.0,
            "tick<<{tick_shift}: {got} vs exact {exact}"
        );
        let _ = last_quality;
        last_quality = got;
    }
}

#[test]
fn k_bucketing_overestimates_but_reconstruction_stays_feasible() {
    let g = caterpillar(10, 2, &CostModel::default(), 4);
    let smin = min_storage_value(&g);
    let budget = smin * 3 / 2;
    let exact = quality_at(&g, TreeDpConfig::exact(), budget).expect("feasible");
    for (limit, ratio) in [(1u32, 2.0f64), (4, 1.5), (16, 1.2)] {
        let mut cfg = TreeDpConfig::heuristic(&g, Some(budget));
        cfg.k_exact_limit = limit;
        cfg.k_ratio = ratio;
        let got = quality_at(&g, cfg, budget).expect("feasible");
        assert!(got >= exact);
        assert!(
            got as f64 <= exact as f64 * 2.5 + 1.0,
            "k-limit {limit}: {got} vs exact {exact}"
        );
    }
}

#[test]
fn storage_pruning_is_lossless_above_the_budget() {
    // Pruning at the queried budget must not change the answer relative to
    // pruning at a much larger bound (it only discards infeasible states).
    let g = random_tree(30, &CostModel::default(), 5);
    let smin = min_storage_value(&g);
    let budget = smin * 2;
    let mut tight = TreeDpConfig::exact();
    tight.storage_prune = Some(budget);
    let mut loose = TreeDpConfig::exact();
    loose.storage_prune = Some(budget * 10);
    let a = quality_at(&g, tight, budget).expect("feasible");
    let b = quality_at(&g, loose, budget).expect("feasible");
    assert_eq!(a, b);
}

#[test]
fn pareto_cap_trades_quality_smoothly() {
    let g = random_tree(50, &CostModel::default(), 6);
    let smin = min_storage_value(&g);
    let budget = smin * 2;
    let wide = {
        let mut cfg = TreeDpConfig::heuristic(&g, Some(budget));
        cfg.pareto_cap = 64;
        quality_at(&g, cfg, budget).expect("feasible")
    };
    for cap in [2usize, 4, 8] {
        let mut cfg = TreeDpConfig::heuristic(&g, Some(budget));
        cfg.pareto_cap = cap;
        let got = quality_at(&g, cfg, budget).expect("feasible");
        assert!(
            got as f64 <= wide as f64 * 3.0 + 1.0,
            "cap {cap}: {got} vs wide {wide}"
        );
    }
}

#[test]
fn btw_and_tree_dp_agree_on_trees() {
    // Two completely independent exact algorithms must agree where both
    // apply: the ultimate cross-validation.
    for seed in 0..4 {
        let g = random_tree(8, &CostModel::default(), seed + 60);
        let smin = min_storage_value(&g);
        for budget in [smin, smin * 2] {
            let t = extract_tree(&g, NodeId(0)).expect("connected");
            let tree_val = dsv_core::tree::msr_tree_exact(&g, &t)
                .best_under(budget)
                .map(|(_, r)| r);
            let btw_val = btw_msr_value(&g, budget);
            assert_eq!(tree_val, btw_val, "seed {seed} budget {budget}");
        }
    }
}
