//! Edge-case and failure-injection tests: degenerate graphs, zero-cost
//! edges, saturation near the `INF` sentinel, malformed inputs.

use dataset_versioning::prelude::*;
use dsv_vgraph::{cost_add, INF};

#[test]
fn single_node_graph_works_everywhere() {
    let mut g = VersionGraph::new();
    let v = g.add_node(42);
    assert_eq!(min_storage_value(&g), 42);
    let plan = lmg(&g, 42).expect("materializing the node fits");
    assert_eq!(plan.costs(&g).total_retrieval, 0);
    assert!(lmg(&g, 41).is_none());
    let dp = dp_bmr_on_graph(&g, v, 0).expect("single node is connected");
    assert_eq!(dp.storage, 42);
    let bt = btw_msr_value(&g, 42).expect("feasible");
    assert_eq!(bt, 0);
}

#[test]
fn zero_cost_edges_do_not_break_algorithms() {
    // Zero storage/retrieval deltas (e.g. renames) are legal inputs.
    let mut g = VersionGraph::new();
    let a = g.add_node(100);
    let b = g.add_node(100);
    let c = g.add_node(100);
    g.add_bidirectional_edge(a, b, 0, 0);
    g.add_bidirectional_edge(b, c, 0, 0);
    let smin = min_storage_value(&g);
    assert_eq!(smin, 100); // one materialization + free deltas
    let plan = lmg_all(&g, smin).expect("feasible");
    let costs = plan.costs(&g);
    assert_eq!(costs.total_retrieval, 0); // all retrievals free
    let dp = dp_msr_on_graph(&g, a, smin, &DpMsrConfig::default()).expect("feasible");
    assert_eq!(dp.1.total_retrieval, 0);
    let r = dp_bmr_on_graph(&g, a, 0).expect("connected");
    assert_eq!(r.storage, 100); // zero-retrieval deltas satisfy R = 0
}

#[test]
fn parallel_edges_pick_the_better_option() {
    let mut g = VersionGraph::new();
    let a = g.add_node(1_000);
    let b = g.add_node(1_000);
    let cheap_store = g.add_edge(a, b, 10, 500);
    let cheap_retr = g.add_edge(a, b, 500, 10);
    // Min storage must use the cheap-storage delta.
    let plan = min_storage_plan(&g);
    assert_eq!(plan.parent[b.index()], Parent::Delta(cheap_store));
    // A retrieval-oriented exact solve prefers the cheap-retrieval delta
    // once the budget allows it.
    let opt = brute_force(
        &g,
        ProblemKind::Msr {
            storage_budget: 1_000 + 500,
        },
    )
    .expect("feasible");
    assert_eq!(opt.plan.parent[b.index()], Parent::Delta(cheap_retr));
}

#[test]
fn cost_add_saturates_at_inf() {
    assert_eq!(cost_add(INF, 1), INF);
    assert_eq!(cost_add(INF - 1, 5), INF);
    // Sums at or above the sentinel clamp to it exactly...
    assert_eq!(cost_add(u64::MAX / 4, u64::MAX / 4), INF);
    // ...while sums just below it pass through unchanged.
    let just_below = u64::MAX / 8;
    assert_eq!(cost_add(just_below, just_below), 2 * just_below);
    assert!(2 * just_below < INF);
    assert_eq!(cost_add(0, 7), 7);
}

#[test]
fn disconnected_graphs_fail_gracefully() {
    let mut g = VersionGraph::with_nodes(3);
    for v in 0..3 {
        *g.node_storage_mut(NodeId(v)) = 10;
    }
    g.add_bidirectional_edge(NodeId(0), NodeId(1), 1, 1);
    // Tree-based pipelines need reachability from the root...
    assert!(extract_tree(&g, NodeId(0)).is_none());
    assert!(dp_msr_on_graph(&g, NodeId(0), 100, &DpMsrConfig::default()).is_none());
    // ...but plan-based algorithms just materialize the isolated node.
    let plan = lmg_all(&g, 100).expect("materialization is always possible");
    plan.validate(&g).expect("valid");
    assert_eq!(plan.parent[2], Parent::Materialized);
    // And the bounded-width DP handles components natively.
    assert!(btw_msr_value(&g, 30).is_some());
}

#[test]
fn directed_only_chains_have_no_upward_deltas() {
    // SVN-style: only forward deltas exist.
    let mut g = VersionGraph::new();
    let nodes: Vec<NodeId> = (0..5).map(|i| g.add_node(1_000 + i)).collect();
    for w in nodes.windows(2) {
        g.add_edge(w[0], w[1], 50, 50);
    }
    let smin = min_storage_value(&g);
    assert_eq!(smin, 1_000 + 4 * 50);
    // The optimum can only materialize prefixes' heads: verify DP and brute
    // force agree despite missing reverse edges (INF handling).
    let budget = smin + 2_000;
    let want = brute_force(
        &g,
        ProblemKind::Msr {
            storage_budget: budget,
        },
    )
    .expect("feasible")
    .costs
    .total_retrieval;
    let t = extract_tree(&g, nodes[0]).expect("forward chain is reachable");
    let got = dsv_core::tree::msr_tree_exact(&g, &t)
        .best_under(budget)
        .expect("feasible")
        .1;
    assert_eq!(got, want);
    let btw = btw_msr_value(&g, budget).expect("feasible");
    assert_eq!(btw, want);
}

#[test]
fn engine_falls_through_to_greedy_on_disconnected_graphs() {
    // DP-MSR (first in dispatch order) needs spanning reachability from the
    // root and reports Infeasible here; the engine must fall through to
    // LMG-All, which materializes the isolated node.
    let mut g = VersionGraph::with_nodes(3);
    for v in 0..3 {
        *g.node_storage_mut(NodeId(v)) = 10;
    }
    g.add_bidirectional_edge(NodeId(0), NodeId(1), 1, 1);
    let engine = Engine::with_default_solvers();
    let sol = engine
        .solve(
            &g,
            ProblemKind::Msr {
                storage_budget: 100,
            },
            &SolveOptions::default(),
        )
        .expect("greedy fallback succeeds");
    assert_eq!(sol.meta.solver, "LMG-All");
    assert_eq!(sol.plan.parent[2], Parent::Materialized);
}

#[test]
fn malformed_text_graphs_are_rejected() {
    use dsv_vgraph::io::from_text;
    for (input, fragment) in [
        ("n 2\ne 0 1 5", "missing retrieval"),
        ("n x", "bad node count"),
        ("n 1\nv 3 5", "out of range"),
    ] {
        let err = from_text(input).expect_err("must fail");
        assert!(
            err.contains(fragment) || !err.is_empty(),
            "unexpected error for {input:?}: {err}"
        );
    }
}

#[test]
fn huge_costs_do_not_overflow_plan_evaluation() {
    let mut g = VersionGraph::new();
    let a = g.add_node(u64::MAX / 16);
    let b = g.add_node(u64::MAX / 16);
    g.add_edge(a, b, u64::MAX / 16, u64::MAX / 16);
    let plan = min_storage_plan(&g);
    let costs = plan.costs(&g); // must not panic
    assert!(costs.storage >= u64::MAX / 16);
}

#[test]
fn budget_exactly_at_minimum_is_feasible() {
    let c = corpus(CorpusName::Datasharing, 0.5, 3);
    let g = &c.graph;
    let smin = min_storage_value(g);
    for plan in [lmg(g, smin), lmg_all(g, smin)] {
        let plan = plan.expect("exact minimum is feasible");
        assert!(plan.storage_cost(g) <= smin);
    }
    assert!(dp_msr_on_graph(g, NodeId(0), smin, &DpMsrConfig::default()).is_some());
}
