//! Differential suite for the incremental greedy loops: on seeded
//! ER/path/tree graphs across budget sweeps, the incremental LMG and
//! LMG-All must pick **byte-identical move sequences** (and therefore
//! plans, move counts, and stats) to the from-scratch oracle loops, and
//! every intermediate plan they pass through must validate and stay
//! within budget.

use dataset_versioning::core::heuristics::lmg::{
    lmg_incremental_traced, lmg_incremental_with_stats, lmg_scratch_traced, lmg_scratch_with_stats,
};
use dataset_versioning::core::heuristics::lmg_all::{
    lmg_all_incremental_traced, lmg_all_incremental_with_stats, lmg_all_scratch_traced,
    lmg_all_scratch_with_stats, Move,
};
use dataset_versioning::prelude::*;
use dataset_versioning::vgraph::generators::{
    bidirectional_path, erdos_renyi_bidirectional, random_tree, CostModel,
};

fn test_graphs() -> Vec<(String, VersionGraph)> {
    let mut graphs = Vec::new();
    for seed in 0..4 {
        graphs.push((
            format!("er-{seed}"),
            erdos_renyi_bidirectional(24, 0.25, &CostModel::default(), seed),
        ));
        graphs.push((
            format!("tree-{seed}"),
            random_tree(20, &CostModel::default(), seed),
        ));
        graphs.push((
            format!("path-{seed}"),
            bidirectional_path(22, &CostModel::default(), seed),
        ));
    }
    // A single-weight instance exercises the Infinite-ratio tie-breaks.
    graphs.push((
        "er-single-weight".into(),
        erdos_renyi_bidirectional(20, 0.3, &CostModel::single_weight(), 11),
    ));
    graphs
}

fn budgets(g: &VersionGraph) -> Vec<Cost> {
    let smin = min_storage_value(g);
    vec![
        smin,
        smin + smin / 4,
        smin * 2,
        smin * 4,
        smin * 16,
        u64::MAX / 8,
    ]
}

/// LMG-All: move sequence, final plan, and stats are byte-identical
/// between the incremental loop and the from-scratch oracle.
#[test]
fn lmg_all_incremental_matches_oracle() {
    for (name, g) in test_graphs() {
        for budget in budgets(&g) {
            let mut oracle_moves: Vec<Move> = Vec::new();
            let oracle = lmg_all_scratch_traced(&g, budget, |mv, _| oracle_moves.push(mv))
                .expect("feasible");
            let mut inc_moves: Vec<Move> = Vec::new();
            let inc = lmg_all_incremental_traced(&g, budget, |mv, _| inc_moves.push(mv))
                .expect("feasible");
            assert_eq!(
                oracle_moves, inc_moves,
                "move sequences diverge on {name} at budget {budget}"
            );
            assert_eq!(
                oracle.0, inc.0,
                "plans diverge on {name} at budget {budget}"
            );
            assert_eq!(
                oracle.1, inc.1,
                "stats diverge on {name} at budget {budget}"
            );
        }
    }
}

/// LMG: same differential guarantee.
#[test]
fn lmg_incremental_matches_oracle() {
    for (name, g) in test_graphs() {
        for budget in budgets(&g) {
            let mut oracle_moves: Vec<u32> = Vec::new();
            let oracle =
                lmg_scratch_traced(&g, budget, |v, _| oracle_moves.push(v)).expect("feasible");
            let mut inc_moves: Vec<u32> = Vec::new();
            let inc =
                lmg_incremental_traced(&g, budget, |v, _| inc_moves.push(v)).expect("feasible");
            assert_eq!(
                oracle_moves, inc_moves,
                "move sequences diverge on {name} at budget {budget}"
            );
            assert_eq!(oracle, inc, "results diverge on {name} at budget {budget}");
        }
    }
}

/// Infeasible budgets are refused identically by both loops.
#[test]
fn infeasible_budgets_agree() {
    let g = random_tree(15, &CostModel::default(), 3);
    let below = min_storage_value(&g) - 1;
    assert!(lmg_all_scratch_with_stats(&g, below).is_none());
    assert!(lmg_all_incremental_with_stats(&g, below).is_none());
    assert!(lmg_scratch_with_stats(&g, below).is_none());
    assert!(lmg_incremental_with_stats(&g, below).is_none());
}

/// Property loop: every intermediate plan of the incremental runs (after
/// every single move) validates structurally and respects the budget, and
/// the reported stats match an independent costing of the final plan.
#[test]
fn every_intermediate_plan_validates_and_fits_budget() {
    for (name, g) in test_graphs() {
        let smin = min_storage_value(&g);
        for budget in [smin, smin * 2, smin * 8] {
            let mut steps = 0usize;
            let (plan, stats) = lmg_all_incremental_traced(&g, budget, |_, p| {
                steps += 1;
                p.validate(&g)
                    .unwrap_or_else(|e| panic!("invalid intermediate plan on {name}: {e}"));
                assert!(
                    p.storage_cost(&g) <= budget,
                    "intermediate plan over budget on {name}"
                );
            })
            .expect("feasible");
            assert_eq!(steps, stats.moves, "observer saw every move on {name}");
            let costs = plan.costs(&g);
            assert_eq!(stats.total_retrieval, costs.total_retrieval, "{name}");
            assert_eq!(stats.storage, costs.storage, "{name}");
            assert!(costs.storage <= budget);

            let mut lmg_steps = 0usize;
            let (lplan, lstats) = lmg_incremental_traced(&g, budget, |_, p| {
                lmg_steps += 1;
                p.validate(&g)
                    .unwrap_or_else(|e| panic!("invalid intermediate LMG plan on {name}: {e}"));
                assert!(p.storage_cost(&g) <= budget);
            })
            .expect("feasible");
            assert_eq!(lmg_steps, lstats.moves);
            let lcosts = lplan.costs(&g);
            assert_eq!(lstats.total_retrieval, lcosts.total_retrieval, "{name}");
            assert_eq!(lstats.storage, lcosts.storage, "{name}");
        }
    }
}

/// The public entry points (`lmg_all`, `lmg`) dispatch to the incremental
/// loops by default and must therefore equal the oracle as well — this is
/// the contract the engine's parity tests build on.
#[test]
fn public_entry_points_match_oracle() {
    let g = erdos_renyi_bidirectional(18, 0.3, &CostModel::default(), 7);
    let budget = min_storage_value(&g) * 3;
    let via_default = lmg_all(&g, budget).expect("feasible");
    let via_oracle = lmg_all_scratch_with_stats(&g, budget).expect("feasible").0;
    assert_eq!(via_default, via_oracle);
    let via_default = lmg(&g, budget).expect("feasible");
    let via_oracle = lmg_scratch_with_stats(&g, budget).expect("feasible").0;
    assert_eq!(via_default, via_oracle);
}
