//! Store round-trip integration: solver plans → content-addressed store →
//! reconstructed, hash-verified bytes with measured costs.
//!
//! This suite pins the planning/execution split's contract:
//!
//! * every solver plan reconstructs **all** versions from the store with
//!   hash-verified bytes, and the measured retrieval/storage costs equal
//!   the plan's predicted [`PlanCosts`] **exactly** (the acceptance gate,
//!   also enforced in CI via `repro --experiment store`);
//! * GC never collects an object reachable from a live (retained) plan;
//! * corruption surfaces as a typed [`StoreError::Corrupt`], never as a
//!   silent success;
//! * corpus content is byte-stable across thread-pool widths (the CI
//!   thread matrix).

use dataset_versioning::prelude::*;
use dsv_core::executor::{ExecError, PlanExecutor};
use dsv_delta::corpus::corpus_with_content;
use dsv_delta::store::pack::ObjectLocation;
use dsv_delta::store::{
    hash_object, MemStore, ObjectKind, PackStore, Store, StoreError, VersionSource,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "dsv-roundtrip-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

const SOLVERS: [&str; 3] = ["LMG", "LMG-All", "DP-MSR"];

fn fixtures() -> Vec<(&'static str, dsv_delta::CorpusResult)> {
    vec![
        // Text content, real Myers deltas.
        (
            "datasharing",
            corpus_with_content(CorpusName::Datasharing, 1.0, 21, true),
        ),
        // Sketch content, chunk-manifest deltas.
        (
            "icu996",
            corpus_with_content(CorpusName::Icu996, 0.015, 22, true),
        ),
    ]
}

/// The acceptance criterion: for every solver plan, all versions
/// reconstruct with hash-verified bytes and measured costs equal predicted
/// costs exactly — on both backends.
#[test]
fn solver_plans_roundtrip_exactly_on_both_backends() {
    let engine = Engine::with_default_solvers();
    let opts = SolveOptions::default();
    for (label, c) in fixtures() {
        let g = &c.graph;
        let content = c.content.as_ref().expect("content retained");
        let problem = ProblemKind::Msr {
            storage_budget: min_storage_value(g) * 2,
        };
        for solver in SOLVERS {
            let sol = engine
                .solve_with(solver, g, problem, &opts)
                .unwrap_or_else(|e| panic!("{solver} on {label}: {e}"));

            let mut mem = MemStore::new();
            let (_, mem_report) = PlanExecutor::new(&mut mem)
                .run(g, &sol.plan, content)
                .expect("mem roundtrip");

            let dir = temp_dir(label);
            let mut pack = PackStore::open(&dir).expect("open pack");
            let (_, pack_report) = PlanExecutor::new(&mut pack)
                .run(g, &sol.plan, content)
                .expect("pack roundtrip");

            for report in [&mem_report, &pack_report] {
                assert_eq!(report.verified, g.n(), "{solver} on {label}");
                assert_eq!(
                    report.measured.total_retrieval, sol.costs.total_retrieval,
                    "{solver} on {label}: measured retrieval must equal predicted exactly"
                );
                assert_eq!(
                    report.measured.storage, sol.costs.storage,
                    "{solver} on {label}: measured storage must equal predicted exactly"
                );
                assert_eq!(report.measured, sol.costs, "{solver} on {label}");
                assert!(report.agreement());
            }
            // Both backends hold identical object sets (same ids).
            assert_eq!(mem.object_count(), pack.object_count());
            drop(pack);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A constructive DP-BTW plan goes through `solve_and_execute`:
/// reconstruction from the provenance arena produces an executor-legal
/// forest whose **measured** costs equal the plan's predictions — and the
/// predictions are the certified optimum, so the exact solver's gain is
/// realized in stored bytes, not just in metadata.
#[test]
fn btw_exact_plan_roundtrips_through_the_store() {
    let c = corpus_with_content(CorpusName::Datasharing, 1.0, 27, true);
    let g = &c.graph;
    let content = c.content.as_ref().expect("content retained");
    // A BTW-only engine: no fallback solver can mask a broken
    // reconstruction.
    let mut engine = Engine::new();
    engine.register(Box::new(dsv_core::engine::solvers::BtwSolver));
    let problem = ProblemKind::Msr {
        storage_budget: min_storage_value(g) * 2,
    };
    let dir = temp_dir("btw");
    let mut store = PackStore::open(&dir).expect("open pack");
    let exec = engine
        .solve_and_execute(g, problem, &SolveOptions::default(), &mut store, content)
        .expect("solve and execute");
    assert_eq!(exec.solution.meta.solver, "DP-BTW");
    assert!(exec.solution.meta.proven_optimal);
    // The executor-measured costs equal the certificate the DP proved.
    assert_eq!(
        exec.solution.meta.lower_bound,
        Some(exec.report.measured.total_retrieval)
    );
    assert_eq!(exec.report.verified, g.n());
    assert!(exec.report.agreement());
    assert_eq!(exec.report.measured, exec.solution.costs);
    // Retire the plan: GC must drain the store.
    PlanExecutor::new(&mut store)
        .release(&exec.stored)
        .expect("release");
    store.gc().expect("gc");
    assert_eq!(store.object_count(), 0);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Engine::solve_and_execute` runs the whole chain in one call.
#[test]
fn solve_and_execute_end_to_end() {
    let c = corpus_with_content(CorpusName::Datasharing, 1.0, 23, true);
    let g = &c.graph;
    let content = c.content.as_ref().expect("content retained");
    let engine = Engine::with_default_solvers();
    let problem = ProblemKind::Msr {
        storage_budget: min_storage_value(g) * 2,
    };
    let dir = temp_dir("sae");
    let mut store = PackStore::open(&dir).expect("open pack");
    let exec = engine
        .solve_and_execute(g, problem, &SolveOptions::default(), &mut store, content)
        .expect("solve and execute");
    assert!(exec.solution.costs.storage <= problem.budget());
    assert_eq!(exec.report.verified, g.n());
    assert!(exec.report.agreement());
    assert_eq!(exec.stored.objects.len(), g.n());
    // Retire the plan: GC must return the store to empty.
    PlanExecutor::new(&mut store)
        .release(&exec.stored)
        .expect("release");
    store.gc().expect("gc");
    assert_eq!(store.object_count(), 0);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// GC safety: releasing one plan never collects objects another live plan
/// still references — the survivor must still reconstruct fully.
#[test]
fn gc_never_collects_objects_of_live_plans() {
    let c = corpus_with_content(CorpusName::Datasharing, 1.0, 24, true);
    let g = &c.graph;
    let content = c.content.as_ref().expect("content retained");
    let engine = Engine::with_default_solvers();
    let opts = SolveOptions::default();
    let problem = ProblemKind::Msr {
        storage_budget: min_storage_value(g) * 2,
    };
    let dir = temp_dir("gc-live");
    let mut store = PackStore::open(&dir).expect("open pack");

    let plans: Vec<_> = ["LMG", "DP-MSR"]
        .into_iter()
        .map(|solver| {
            let sol = engine.solve_with(solver, g, problem, &opts).expect("solve");
            let (stored, report) = PlanExecutor::new(&mut store)
                .run(g, &sol.plan, content)
                .expect("roundtrip");
            assert!(report.agreement());
            stored
        })
        .collect();
    // The two plans share objects (both store deltas along mostly the same
    // cheap edges) — content addressing dedups them.
    let referenced: usize = plans.iter().map(|p| p.objects.len()).sum();
    assert!(
        store.object_count() < referenced,
        "expected cross-plan dedup: {} objects for {referenced} references",
        store.object_count()
    );

    // Retire the first plan; the second must survive GC fully intact.
    PlanExecutor::new(&mut store)
        .release(&plans[0])
        .expect("release");
    store.gc().expect("gc");
    for &id in &plans[1].objects {
        assert!(
            store.contains(id),
            "GC collected {id}, still referenced by a live plan"
        );
    }
    let report = PlanExecutor::new(&mut store)
        .execute(g, &plans[1])
        .expect("survivor reconstructs");
    assert_eq!(report.verified, g.n());
    assert!(report.agreement());

    PlanExecutor::new(&mut store)
        .release(&plans[1])
        .expect("release");
    store.gc().expect("gc");
    assert_eq!(store.object_count(), 0);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Property loop over both backends: random writes, reads, releases, and
/// GC passes — reads always return the exact bytes written, retained
/// objects survive every GC, released ones are reclaimed.
#[test]
fn store_property_roundtrip_loop() {
    let dir = temp_dir("property");
    // A small loose threshold exercises both the pack and the loose path.
    let mut pack = PackStore::open_with_threshold(&dir, 48).expect("open pack");
    let mut mem = MemStore::new();
    let mut rng = SmallRng::seed_from_u64(0x5709E);
    // Model: id -> (bytes, live refcount).
    let mut model: std::collections::HashMap<dsv_delta::ObjectId, (Vec<u8>, u32)> =
        std::collections::HashMap::new();

    for round in 0..60 {
        // Write a batch of random objects (duplicates intended: ~1/4 reuse
        // an existing payload to exercise dedup).
        let batch = rng.gen_range(1..6);
        for _ in 0..batch {
            let kind = if rng.gen_bool(0.5) {
                ObjectKind::Chunk
            } else {
                ObjectKind::Delta
            };
            let len = rng.gen_range(0..120usize);
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
            let id_pack = pack.put(kind, &bytes).expect("pack put");
            let id_mem = mem.put(kind, &bytes).expect("mem put");
            assert_eq!(id_pack, id_mem, "backends must agree on addresses");
            let entry = model.entry(id_pack).or_insert_with(|| (bytes.clone(), 0));
            entry.1 += 1;
        }
        // Random releases.
        let ids: Vec<_> = model.keys().copied().collect();
        for id in ids {
            if rng.gen_bool(0.3) {
                let entry = model.get_mut(&id).expect("model entry");
                if entry.1 > 0 {
                    entry.1 -= 1;
                    pack.release(id).expect("pack release");
                    mem.release(id).expect("mem release");
                }
            }
        }
        // Periodic GC; occasionally reopen the pack to exercise
        // persistence of data and reference counts.
        if round % 7 == 3 {
            pack.gc().expect("pack gc");
            mem.gc().expect("mem gc");
            model.retain(|_, (_, rc)| *rc > 0);
        }
        if round % 13 == 5 {
            pack.flush().expect("flush");
            drop(pack);
            pack = PackStore::open_with_threshold(&dir, 48).expect("reopen pack");
        }
        // Every retained object reads back byte-identical from both
        // backends (GC'd-but-unreferenced entries may still linger; only
        // live ones are guaranteed).
        for (id, (bytes, rc)) in &model {
            if *rc > 0 {
                assert_eq!(&pack.get(*id).expect("pack get"), bytes, "round {round}");
                assert_eq!(&mem.get(*id).expect("mem get"), bytes, "round {round}");
                assert_eq!(pack.meta(*id).expect("meta").refcount, *rc);
            }
        }
    }
    // Drain: release everything, GC, both stores end empty.
    for (id, (_, rc)) in &model {
        for _ in 0..*rc {
            pack.release(*id).expect("pack release");
            mem.release(*id).expect("mem release");
        }
    }
    pack.gc().expect("pack gc");
    mem.gc().expect("mem gc");
    assert_eq!(pack.object_count(), 0);
    assert_eq!(mem.object_count(), 0);
    drop(pack);
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end corruption: flipping one stored byte of a plan's object
/// makes execution fail with the typed corruption error.
#[test]
fn corrupted_chunk_fails_execution_with_typed_error() {
    let c = corpus_with_content(CorpusName::Datasharing, 1.0, 25, true);
    let g = &c.graph;
    let content = c.content.as_ref().expect("content retained");
    let engine = Engine::with_default_solvers();
    let problem = ProblemKind::Msr {
        storage_budget: min_storage_value(g) * 2,
    };
    let sol = engine
        .solve_with("LMG-All", g, problem, &SolveOptions::default())
        .expect("solve");

    let dir = temp_dir("corrupt");
    let mut store = PackStore::open(&dir).expect("open pack");
    let stored = PlanExecutor::new(&mut store)
        .ingest(g, &sol.plan, content)
        .expect("ingest");
    // Corrupt the object of some delta-reconstructed node on disk.
    let victim = (0..g.n())
        .find(|&v| matches!(sol.plan.parent[v], Parent::Delta(_)))
        .expect("some delta node");
    match store.locate(stored.objects[victim]).expect("located") {
        ObjectLocation::Packed { payload_offset, .. } => {
            let mut f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(store.pack_path())
                .expect("open pack file");
            f.seek(SeekFrom::Start(payload_offset)).expect("seek");
            let mut b = [0u8; 1];
            f.read_exact(&mut b).expect("read");
            f.seek(SeekFrom::Start(payload_offset)).expect("seek");
            f.write_all(&[b[0] ^ 0xFF]).expect("write");
        }
        ObjectLocation::Loose { path } => {
            let mut bytes = std::fs::read(&path).expect("read loose");
            bytes[0] ^= 0xFF;
            std::fs::write(&path, bytes).expect("write loose");
        }
    }
    let err = PlanExecutor::new(&mut store)
        .execute(g, &stored)
        .expect_err("corruption must fail execution");
    assert!(
        matches!(err, ExecError::Store(StoreError::Corrupt { .. })),
        "expected a typed corruption error, got {err}"
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corpus synthesis draws content from per-version seeded RNG streams, so
/// generated graphs *and bytes* are identical at any thread-pool width —
/// the store round-trip is byte-stable across the CI thread matrix.
#[test]
fn corpus_content_is_stable_across_thread_pool_widths() {
    let generate = || corpus_with_content(CorpusName::Datasharing, 1.0, 26, true);
    let fingerprint = |c: &dsv_delta::CorpusResult| {
        let content = c.content.as_ref().expect("content retained");
        let payloads: Vec<_> = (0..c.graph.n() as u32)
            .map(|v| hash_object(ObjectKind::Chunk, &content.payload_bytes(v)))
            .collect();
        (c.graph.edges().to_vec(), payloads)
    };
    let narrow = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool")
        .install(|| fingerprint(&generate()));
    let wide = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool")
        .install(|| fingerprint(&generate()));
    assert_eq!(narrow.0, wide.0, "graph must not depend on pool width");
    assert_eq!(narrow.1, wide.1, "content must not depend on pool width");
}
