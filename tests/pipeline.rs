//! End-to-end integration: corpus generation → transforms → every
//! algorithm → plan validation. This is the full pipeline a user of the
//! library runs, exercised across crate boundaries.

use dataset_versioning::prelude::*;
use dsv_delta::corpus::corpus_with_content;

fn all_msr_algorithms_agree_on_feasibility(g: &VersionGraph, budget: Cost) {
    let engine = Engine::with_default_solvers();
    let opts = SolveOptions::default();
    let problem = ProblemKind::Msr {
        storage_budget: budget,
    };
    let lmg_sol = engine.solve_with("LMG", g, problem, &opts);
    let all_sol = engine.solve_with("LMG-All", g, problem, &opts);
    assert_eq!(lmg_sol.is_ok(), all_sol.is_ok());
    for sol in [lmg_sol, all_sol].into_iter().flatten() {
        // The engine validated and budget-checked already; re-check the
        // invariants independently here.
        sol.plan.validate(g).expect("valid plan");
        assert!(sol.costs.storage <= budget);
    }
}

#[test]
fn datasharing_corpus_end_to_end() {
    let c = corpus(CorpusName::Datasharing, 1.0, 11);
    let g = &c.graph;
    assert_eq!(g.n(), 29);
    let smin = min_storage_value(g);

    // Sweep like Figure 10.
    for factor in [105u64, 150, 200, 250] {
        let budget = smin * factor / 100;
        all_msr_algorithms_agree_on_feasibility(g, budget);
        let (plan, costs) =
            dp_msr_on_graph(g, NodeId(0), budget, &DpMsrConfig::default()).expect("feasible");
        plan.validate(g).expect("valid");
        assert!(costs.storage <= budget);
    }

    // OPT via ILP at one budget; DP must be close (paper: near-identical).
    let budget = smin * 2;
    let dp = dp_msr_on_graph(g, NodeId(0), budget, &DpMsrConfig::default())
        .expect("feasible")
        .1
        .total_retrieval;
    let incumbent = lmg_all(g, budget)
        .expect("feasible")
        .costs(g)
        .total_retrieval
        .min(dp);
    // Debug builds get a smaller node budget: the assertion below accepts a
    // NodeLimit outcome, so this only trades proof strength for time.
    let node_cap = if cfg!(debug_assertions) {
        4_000
    } else {
        150_000
    };
    match msr_opt(g, budget, node_cap, Some(incumbent)) {
        Some(opt) if opt.proven_optimal => {
            assert!(opt.total_retrieval <= dp);
            assert!(
                dp as f64 <= opt.total_retrieval as f64 * 1.3 + 1.0,
                "DP-MSR ({dp}) should track OPT ({}) on datasharing",
                opt.total_retrieval
            );
        }
        Some(opt) => {
            // Node limit hit but an improving solution was found.
            assert!(opt.total_retrieval <= incumbent);
        }
        None => {
            // Node limit hit without beating the heuristic incumbent —
            // acceptable under debug node budgets; the release run proves
            // optimality.
            if !cfg!(debug_assertions) {
                panic!("release ILP must close");
            }
        }
    }
}

#[test]
fn compressed_corpus_pipeline() {
    let c = corpus(CorpusName::Datasharing, 1.0, 12);
    let g = random_compression(&c.graph, 99);
    // Compression must decouple the weight functions.
    assert!(g.edges().iter().any(|e| e.storage != e.retrieval));
    let smin = min_storage_value(&g);
    for factor in [120u64, 200] {
        let budget = smin * factor / 100;
        all_msr_algorithms_agree_on_feasibility(&g, budget);
    }
    // BMR pipeline on the compressed graph.
    let r_budget = g.max_edge_retrieval() * 2;
    let mp = modified_prims(&g, r_budget);
    mp.validate(&g).expect("valid");
    assert!(mp.costs(&g).max_retrieval <= r_budget);
    let dp = dp_bmr_on_graph(&g, NodeId(0), r_budget).expect("connected");
    dp.plan.validate(&g).expect("valid");
    assert!(dp.plan.costs(&g).max_retrieval <= r_budget);
}

#[test]
fn er_construction_pipeline() {
    let c = corpus_with_content(CorpusName::LeetCodeAnimation, 0.2, 13, true);
    let sketches = c.sketches().expect("sketch corpus");
    let er = erdos_renyi_from_sketches(sketches, 0.3, 5);
    assert!(er.is_bidirectional());
    // The ER graph must be solvable by every algorithm.
    let smin = min_storage_value(&er);
    all_msr_algorithms_agree_on_feasibility(&er, smin * 3 / 2);
    let (plan, costs) = dp_msr_on_graph(&er, NodeId(0), smin * 3 / 2, &DpMsrConfig::default())
        .expect("ER graphs are connected at p=0.3");
    plan.validate(&er).expect("valid");
    assert!(costs.storage <= smin * 3 / 2);
}

#[test]
fn mmr_and_bsr_reductions_on_corpus() {
    let c = corpus(CorpusName::Datasharing, 0.8, 14);
    let g = &c.graph;
    let engine = Engine::with_default_solvers();
    let opts = SolveOptions::default();
    let smin = min_storage_value(g);
    let mmr = engine
        .solve(
            g,
            ProblemKind::Mmr {
                storage_budget: smin * 2,
            },
            &opts,
        )
        .expect("feasible");
    mmr.plan.validate(g).expect("valid");
    let max_r = mmr.costs.max_retrieval;
    assert_eq!(mmr.meta.reported_objective, Some(max_r));

    let bsr = engine
        .solve(
            g,
            ProblemKind::Bsr {
                retrieval_budget: max_r * g.n() as u64,
            },
            &opts,
        )
        .expect("generous budget is feasible");
    bsr.plan.validate(g).expect("valid");
    assert!(bsr.costs.storage >= smin);
    assert!(bsr.costs.total_retrieval <= max_r * g.n() as u64);
}

#[test]
fn problem_enum_is_consistent_with_brute_force_on_corpus_subgraph() {
    // Take a tiny corpus so brute force is exact.
    let c = corpus(CorpusName::Datasharing, 0.25, 15); // ~7 commits
    let g = &c.graph;
    assert!(g.n() <= 9);
    let smin = min_storage_value(g);
    let budget = smin * 2;
    let msr = brute_force(
        g,
        ProblemKind::Msr {
            storage_budget: budget,
        },
    )
    .expect("feasible");
    // LMG/LMG-All are upper bounds on the brute-force optimum.
    for plan in [lmg(g, budget), lmg_all(g, budget)].into_iter().flatten() {
        assert!(plan.costs(g).total_retrieval >= msr.costs.total_retrieval);
    }
    // The storage-minimal plan is what budget = smin forces.
    let tight = brute_force(
        g,
        ProblemKind::Msr {
            storage_budget: smin,
        },
    )
    .expect("feasible");
    assert_eq!(tight.costs.storage, smin);
}

#[test]
fn serialization_roundtrip_through_text_and_json() {
    let c = corpus(CorpusName::Datasharing, 0.5, 16);
    let g = &c.graph;
    let text = dsv_vgraph::io::to_text(g);
    let g2 = dsv_vgraph::io::from_text(&text).expect("parses");
    assert_eq!(g.edges(), g2.edges());
    let json = dsv_vgraph::io::to_json(g);
    let g3 = dsv_vgraph::io::from_json(&json).expect("parses");
    assert_eq!(g.edges(), g3.edges());
    // Solving the round-tripped graph gives identical results.
    let smin = min_storage_value(g);
    let a = lmg_all(g, smin * 2).expect("feasible").costs(g);
    let b = lmg_all(&g2, smin * 2).expect("feasible").costs(&g2);
    assert_eq!(a, b);
}

#[test]
fn treewidth_of_natural_corpora_is_small() {
    let c = corpus(CorpusName::Styleguide, 0.3, 17);
    let tw = dsv_treewidth::treewidth_upper_bound(&c.graph);
    // Footnote 7: natural version graphs have low treewidth even with
    // hundreds of commits and merges.
    assert!(tw <= 8, "treewidth upper bound {tw} unexpectedly large");
}
