//! Fault-injection and crash-durability integration suite.
//!
//! Three layers of the failure model are pinned here:
//!
//! * **Crash matrix**: a simulated power loss at *every* enumerated
//!   [`CrashPoint`] inside `PackStore` (pack append, loose write, index
//!   write, index rename, GC rewrite, GC rename, GC index) followed by a
//!   reopen must lose no acknowledged-and-flushed object, never serve
//!   wrong bytes, and leave a fully functional store.
//! * **Seeded property loop**: hundreds of random
//!   put/get/retain/release/gc ops against `FaultStore<MemStore>` and
//!   `FaultStore<PackStore>` under injected transient I/O errors,
//!   permanent read errors, bit flips, and put failures — every
//!   surviving acknowledged object reads back byte-identical (after
//!   repair where needed), and repairs never change refcounts.
//! * **Reopen under faults**: the pack variant drops and reopens the
//!   store between segments, re-arming the fault marks, and the same
//!   invariants must hold across the restart.

use dsv_delta::store::{
    hash_object, CrashPoint, Durability, FaultPlan, FaultStore, MemStore, ObjectId, ObjectKind,
    PackOptions, PackStore, Store, StoreError,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "dsv-faults-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Small loose threshold so both packed and loose tiers are exercised.
fn pack_options() -> PackOptions {
    PackOptions {
        loose_threshold: 64,
        durability: Durability::Full,
    }
}

/// What the store acknowledged before the crash: id → (bytes, refcount).
type Acknowledged = BTreeMap<ObjectId, (Vec<u8>, u32)>;

/// Populate a store with packed + loose objects in both live and dead
/// states, flush (the durability ack barrier), and return the
/// acknowledged *live* set.
fn populate(s: &mut PackStore) -> (Acknowledged, Vec<ObjectId>) {
    let mut acked = Acknowledged::new();
    let mut dead = Vec::new();
    // Dead packed first, so GC compaction genuinely shifts offsets and
    // the stale-index spot check has to catch it.
    let dead_packed = s.put(ObjectKind::Chunk, b"dead packed").expect("put");
    let live_packed = s.put(ObjectKind::Chunk, b"live packed").expect("put");
    s.retain(live_packed).expect("retain");
    let dead_loose = s.put(ObjectKind::Chunk, &[7u8; 100]).expect("put");
    let live_loose = s.put(ObjectKind::Delta, &[9u8; 120]).expect("put");
    s.release(dead_packed).expect("release");
    s.release(dead_loose).expect("release");
    s.flush().expect("ack flush");
    acked.insert(live_packed, (b"live packed".to_vec(), 2));
    acked.insert(live_loose, (vec![9u8; 120], 1));
    dead.push(dead_packed);
    dead.push(dead_loose);
    (acked, dead)
}

/// Drive the store into the given crash point. Returns whether the
/// crash actually fired (it must).
fn trigger(s: &mut PackStore, point: CrashPoint) {
    s.arm_crash(point);
    let err = match point {
        CrashPoint::PackAppend => s.put(ObjectKind::Chunk, b"torn small").err(),
        CrashPoint::LooseWrite => s.put(ObjectKind::Chunk, &[3u8; 200]).err(),
        CrashPoint::IndexWrite | CrashPoint::IndexRename => {
            s.put(ObjectKind::Chunk, b"unflushed").expect("put");
            s.flush().err()
        }
        CrashPoint::GcRewrite | CrashPoint::GcRename | CrashPoint::GcIndex => s.gc().err(),
    };
    let err = err.expect("armed crash point must fire");
    assert!(
        matches!(err, StoreError::Io { .. }),
        "crash surfaces as Io: {err}"
    );
    assert!(s.crashed(), "store is poisoned after the crash");
    // The dead process writes nothing more: every subsequent op fails.
    assert!(s.put(ObjectKind::Chunk, b"after death").is_err());
    assert!(s.flush().is_err());
}

/// The crash-matrix acceptance gate: after a simulated power loss at
/// every enumerated crash point, reopening recovers every
/// acknowledged-and-flushed object byte-identical with its refcount
/// intact, never serves wrong bytes, and the store keeps working.
#[test]
fn crash_matrix_reopen_loses_no_acknowledged_object() {
    for &point in &CrashPoint::ALL {
        let dir = temp_dir(&format!("crash-{point:?}").to_lowercase());
        let (acked, dead) = {
            let mut s = PackStore::open_with(&dir, pack_options()).expect("open");
            let (acked, dead) = populate(&mut s);
            trigger(&mut s, point);
            (acked, dead)
            // Drop while crashed: the exit-time index write is skipped,
            // like a process that died.
        };

        let mut s = PackStore::open_with(&dir, pack_options())
            .unwrap_or_else(|e| panic!("reopen after {point:?}: {e}"));
        for (&id, (bytes, rc)) in &acked {
            let got = s
                .get(id)
                .unwrap_or_else(|e| panic!("{point:?}: lost acknowledged object {id}: {e}"));
            assert_eq!(&got, bytes, "{point:?}: wrong bytes served for {id}");
            assert_eq!(
                s.meta(id).expect("meta").refcount,
                *rc,
                "{point:?}: refcount drifted for {id}"
            );
        }
        // Dead objects may or may not have survived the torn GC, but a
        // surviving copy must still serve its original (hashed) bytes —
        // never garbage.
        for &id in &dead {
            if s.contains(id) {
                let got = s.get(id).expect("surviving dead object reads");
                assert_eq!(hash_object(s.meta(id).expect("meta").kind, &got), id);
            }
        }
        // The recovered store is fully functional end to end.
        let fresh = s.put(ObjectKind::Chunk, b"post recovery").expect("put");
        assert_eq!(s.get(fresh).expect("get"), b"post recovery");
        s.flush().expect("flush");
        s.release(fresh).expect("release");
        s.gc().expect("gc");
        drop(s);
        // And the post-recovery state itself survives a clean reopen.
        let s = PackStore::open_with(&dir, pack_options()).expect("second reopen");
        for (&id, (bytes, _)) in &acked {
            assert_eq!(&s.get(id).expect("still present"), bytes);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A crash mid-GC must not resurrect dead objects as *live*: the
/// pre-destruction index barrier persists the zero refcounts first, so
/// any dead object that survives the crash still reports refcount 0 and
/// falls to the next GC.
#[test]
fn crashed_gc_cannot_resurrect_dead_objects_as_live() {
    for &point in &[
        CrashPoint::GcRewrite,
        CrashPoint::GcRename,
        CrashPoint::GcIndex,
    ] {
        let dir = temp_dir(&format!("resurrect-{point:?}").to_lowercase());
        let (_, dead) = {
            let mut s = PackStore::open_with(&dir, pack_options()).expect("open");
            let out = populate(&mut s);
            trigger(&mut s, point);
            out
        };
        let mut s = PackStore::open_with(&dir, pack_options()).expect("reopen");
        for &id in &dead {
            if s.contains(id) {
                assert_eq!(
                    s.meta(id).expect("meta").refcount,
                    0,
                    "{point:?}: dead object {id} came back live"
                );
            }
        }
        // The next GC finishes the job.
        s.gc().expect("gc");
        for &id in &dead {
            assert!(!s.contains(id), "{point:?}: {id} survived a clean gc");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// In-model state of one object.
struct ModelObj {
    kind: ObjectKind,
    bytes: Vec<u8>,
    rc: u32,
}

type Model = BTreeMap<ObjectId, ModelObj>;

/// Read `id` through the fault store, repairing injected faults from the
/// model's redundant copy. Asserts the repair preserves the refcount and
/// that the object heals within a bounded number of rounds.
fn read_healed<S: Store>(fault: &mut FaultStore<S>, id: ObjectId, obj: &ModelObj) -> Vec<u8> {
    for _ in 0..4 {
        match fault.get(id) {
            Ok(bytes) => return bytes,
            Err(StoreError::Io { .. }) | Err(StoreError::Corrupt { .. }) => {
                let rc_before = fault.meta(id).expect("faulted object has meta").refcount;
                fault.repair(id, obj.kind, &obj.bytes).expect("repair");
                assert_eq!(
                    fault.meta(id).expect("meta").refcount,
                    rc_before,
                    "repair changed the refcount of {id}"
                );
            }
            Err(e) => panic!("unexpected error reading {id}: {e}"),
        }
    }
    panic!("object {id} did not heal after repeated repairs")
}

fn fault_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_transient_get(0.10)
        .with_permanent_get(0.05)
        .with_bit_flip(0.05)
        .with_put_failures(0.10)
}

/// One segment of the property loop: `ops` random operations against the
/// fault store, keeping `model` as the ground truth.
fn run_fault_ops<S: Store>(
    fault: &mut FaultStore<S>,
    model: &mut Model,
    rng: &mut SmallRng,
    ops: usize,
) {
    for _ in 0..ops {
        let known: Vec<ObjectId> = model.keys().copied().collect();
        let pick = |rng: &mut SmallRng| known[rng.gen_range(0..known.len())];
        match rng.gen_range(0..100u32) {
            // Put: on injected failure the store is untouched; on success
            // the model gains a reference (dedup bumps).
            0..=29 => {
                let len = rng.gen_range(1..200usize);
                let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
                let kind = if rng.gen_bool(0.5) {
                    ObjectKind::Chunk
                } else {
                    ObjectKind::Delta
                };
                let expected_id = hash_object(kind, &bytes);
                match fault.put(kind, &bytes) {
                    Ok(id) => {
                        assert_eq!(id, expected_id);
                        model
                            .entry(id)
                            .and_modify(|o| o.rc += 1)
                            .or_insert(ModelObj { kind, bytes, rc: 1 });
                    }
                    Err(StoreError::Io { .. }) => {
                        // Injected put failure: the inner store must be
                        // exactly as the model says.
                        assert_eq!(
                            fault.contains(expected_id),
                            model.contains_key(&expected_id),
                            "failed put mutated the store"
                        );
                    }
                    Err(e) => panic!("unexpected put error: {e}"),
                }
            }
            // Read with repair: always byte-identical in the end.
            30..=59 if !known.is_empty() => {
                let id = pick(rng);
                let obj = &model[&id];
                let got = read_healed(fault, id, obj);
                assert_eq!(got, obj.bytes, "wrong bytes for {id}");
            }
            60..=74 if !known.is_empty() => {
                let id = pick(rng);
                fault.retain(id).expect("retain");
                model.get_mut(&id).expect("known").rc += 1;
            }
            75..=89 if !known.is_empty() => {
                let id = pick(rng);
                let obj = model.get_mut(&id).expect("known");
                if obj.rc > 0 {
                    fault.release(id).expect("release");
                    obj.rc -= 1;
                }
            }
            _ => {
                let dead: Vec<ObjectId> = model
                    .iter()
                    .filter(|(_, o)| o.rc == 0)
                    .map(|(&id, _)| id)
                    .collect();
                let stats = fault.gc().expect("gc");
                assert_eq!(
                    stats.collected_objects,
                    dead.len(),
                    "gc collected a different set than the model"
                );
                for id in dead {
                    model.remove(&id);
                    assert!(!fault.contains(id), "collected object still present");
                }
            }
        }
        // Refcounts in the store always match the model exactly.
        for (&id, obj) in model.iter() {
            assert_eq!(
                fault.meta(id).expect("modeled object has meta").refcount,
                obj.rc,
                "refcount drift on {id}"
            );
        }
    }
}

/// Final sweep: every surviving acknowledged object reads back
/// byte-identical (repairing where faults are injected).
fn verify_model<S: Store>(fault: &mut FaultStore<S>, model: &Model) {
    for (&id, obj) in model.iter() {
        let got = read_healed(fault, id, obj);
        assert_eq!(got, obj.bytes, "final sweep: wrong bytes for {id}");
        assert_eq!(fault.meta(id).expect("meta").refcount, obj.rc);
    }
}

#[test]
fn property_loop_mem_backend_survives_injected_faults() {
    for seed in [11u64, 29, 47] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut fault = FaultStore::new(MemStore::new(), fault_plan(seed));
        let mut model = Model::new();
        run_fault_ops(&mut fault, &mut model, &mut rng, 300);
        verify_model(&mut fault, &model);
        let stats = fault.stats();
        assert!(
            stats.injected_reads() > 0 && stats.repairs > 0,
            "the plan must actually exercise faults and repairs: {stats:?}"
        );
    }
}

#[test]
fn property_loop_pack_backend_survives_faults_and_reopens() {
    for seed in [13u64, 31] {
        let dir = temp_dir(&format!("prop-{seed}"));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut fault = FaultStore::new(
            PackStore::open_with(&dir, pack_options()).expect("open"),
            fault_plan(seed),
        );
        let mut model = Model::new();
        // Three segments with a flush + drop + reopen between them. The
        // reopen re-arms the per-object fault marks (the healed set dies
        // with the decorator), so repairs must keep working afterwards.
        for segment in 0..3 {
            run_fault_ops(&mut fault, &mut model, &mut rng, 100);
            fault.flush().expect("ack flush");
            let inner = fault.into_inner();
            drop(inner);
            let reopened = PackStore::open_with(&dir, pack_options())
                .unwrap_or_else(|e| panic!("reopen segment {segment}: {e}"));
            fault = FaultStore::new(reopened, fault_plan(seed));
            verify_model(&mut fault, &model);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The unified corruption API (satellite): `FaultStore::corrupt_object`
/// behaves identically over both backends — reads fail typed until
/// repair, and repair restores bytes without touching refcounts.
#[test]
fn corrupt_object_is_uniform_across_backends() {
    let dir = temp_dir("uniform");
    let mem = FaultStore::transparent(MemStore::new());
    let pack = FaultStore::transparent(PackStore::open_with(&dir, pack_options()).expect("open"));

    fn check<S: Store>(mut fault: FaultStore<S>) {
        let id = fault.put(ObjectKind::Chunk, b"shared api").expect("put");
        fault.retain(id).expect("retain");
        assert!(fault.corrupt_object(id));
        assert!(matches!(fault.get(id), Err(StoreError::Corrupt { .. })));
        assert!(matches!(fault.get_ref(id), Err(StoreError::Corrupt { .. })));
        fault
            .repair(id, ObjectKind::Chunk, b"shared api")
            .expect("repair");
        assert_eq!(fault.get(id).expect("healed"), b"shared api");
        assert_eq!(fault.meta(id).expect("meta").refcount, 2);
        // Corrupting an absent object reports false.
        assert!(!fault.corrupt_object(ObjectId(1, 2)));
    }
    check(mem);
    check(pack);
    let _ = std::fs::remove_dir_all(&dir);
}
