//! Theorem 1, live: the adversarial chain on which LMG (and any greedy in
//! its family) is arbitrarily bad.
//!
//! The instance is the three-node chain of Figure 2: storages `a, b, c` and
//! edges `(A,B), (B,C)` with costs `(1−ε)b` and `(1−ε)c`, `ε = b/c`. With a
//! storage budget in `[a + (1−ε)b + c, a + b + c)` the greedy ratio test
//! prefers materializing `B` (`ρ = 2/ε − 1`) over `C` (`ρ = 1/ε − ε`);
//! afterwards `C` no longer fits and the solution is stuck at total
//! retrieval `(1−ε)c`, while the optimum `(1−ε)b` was reachable — a gap of
//! `c/b`, unbounded.
//!
//! Run with: `cargo run --example lmg_worst_case`

use dataset_versioning::prelude::*;

fn adversarial_chain(b: Cost, c: Cost) -> (VersionGraph, Cost) {
    let eb = b - b * b / c; // (1 - b/c) * b
    let ec = c - b; // (1 - b/c) * c
    let a = 10 * c; // "a is large"
    let mut g = VersionGraph::new();
    let va = g.add_labelled_node(a, "A");
    let vb = g.add_labelled_node(b, "B");
    let vc = g.add_labelled_node(c, "C");
    g.add_edge(va, vb, eb, eb);
    g.add_edge(vb, vc, ec, ec);
    let budget = a + eb + c; // inside the adversarial window
    (g, budget)
}

fn main() {
    println!(
        "{:>8} | {:>12} {:>12} {:>12} {:>12} | {:>9}",
        "c/b", "LMG", "LMG-All", "DP-MSR", "OPT", "LMG/OPT"
    );
    println!("{}", "-".repeat(78));
    let engine = Engine::with_default_solvers();
    let opts = SolveOptions::default();
    for ratio in [10u64, 100, 1_000, 10_000, 100_000] {
        // b must stay >= ratio so that ε = b/c survives integer rounding.
        let b = 1_000u64.max(ratio);
        let c = b * ratio;
        let (g, budget) = adversarial_chain(b, c);
        let problem = ProblemKind::Msr {
            storage_budget: budget,
        };
        let objective = |solver: &str| {
            engine
                .solve_with(solver, &g, problem, &opts)
                .expect("feasible")
                .costs
                .total_retrieval
        };
        let lmg_obj = objective("LMG");
        let all_obj = objective("LMG-All");
        let dp_obj = objective("DP-MSR");
        let opt = objective("BruteForce");
        println!(
            "{:>8} | {:>12} {:>12} {:>12} {:>12} | {:>9.1}",
            ratio,
            lmg_obj,
            all_obj,
            dp_obj,
            opt,
            lmg_obj as f64 / opt.max(1) as f64
        );
    }
    println!(
        "\nThe greedy ratio gap LMG/OPT grows linearly in c/b (Theorem 1), while\n\
         the tree DP tracks the optimum: greedy can be arbitrarily bad even on\n\
         a directed path with a single weight function and triangle inequality."
    );
}
