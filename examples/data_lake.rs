//! Data-lake scenario from the paper's introduction: "huge tabular datasets
//! like product catalogs might require a few records (or rows) to be
//! modified periodically, resulting in a new version for each such
//! modification."
//!
//! We simulate a year of nightly catalog snapshots (a long version chain
//! with occasional large schema-migration commits), then answer the
//! operator questions the paper motivates:
//!
//! 1. What does the storage/retrieval frontier look like (MSR)?
//! 2. If every analyst query must reconstruct its snapshot in bounded time,
//!    what is the cheapest checkpoint placement (BMR)?
//! 3. How much worse is naive "checkpoint every k days" (the git-pack-style
//!    baseline)?
//!
//! Run with: `cargo run --example data_lake`

use dataset_versioning::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Nightly snapshots: mostly small row edits, monthly schema migrations
/// that rewrite a large fraction of the table.
fn build_catalog_history(days: usize, seed: u64) -> VersionGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = VersionGraph::new();
    let base_size: u64 = 5_000_000; // ~5 MB catalog
    let mut size = base_size;
    let mut prev: Option<NodeId> = None;
    for day in 0..days {
        let migration = day > 0 && day % 30 == 0;
        // Daily churn: 0.1-1% of rows; migrations rewrite 20-40%.
        let churn = if migration {
            (size as f64 * rng.gen_range(0.20..0.40)) as u64
        } else {
            (size as f64 * rng.gen_range(0.001..0.01)) as u64
        };
        size += churn / 10; // catalogs grow slowly
        let v = g.add_labelled_node(size, format!("day{day:03}"));
        if let Some(p) = prev {
            // Forward delta: the new/changed rows; backward: the old rows.
            let fwd = churn.max(64);
            let bwd = (churn / 2).max(64);
            g.add_edge(p, v, fwd, fwd);
            g.add_edge(v, p, bwd, bwd);
        }
        prev = Some(v);
    }
    g
}

fn mb(x: u64) -> f64 {
    x as f64 / 1e6
}

fn main() {
    let g = build_catalog_history(365, 7);
    println!(
        "catalog history: {} nightly snapshots, {:.1} GB if fully materialized",
        g.n(),
        g.total_node_storage() as f64 / 1e9
    );
    let smin = min_storage_value(&g);
    println!(
        "minimum storage (one materialization + deltas): {:.1} MB\n",
        mb(smin)
    );

    // 1. The MSR frontier.
    let budgets: Vec<Cost> = (0..6).map(|i| smin + smin * i * 2 / 5).collect();
    let sweep =
        dp_msr_sweep(&g, NodeId(0), &budgets, &DpMsrConfig::default()).expect("chain is connected");
    println!("DP-MSR frontier:");
    for (b, c) in budgets.iter().zip(&sweep) {
        match c {
            Some(c) => println!(
                "  S <= {:>7.1} MB -> storage {:>7.1} MB, mean snapshot rebuild {:>7.2} MB",
                mb(*b),
                mb(c.storage),
                mb(c.total_retrieval) / g.n() as f64
            ),
            None => println!(
                "  S <= {:>7.1} MB -> infeasible on the extracted tree",
                mb(*b)
            ),
        }
    }

    // 2. Bounded rebuild time: BMR through the engine — DP-BMR wins the
    //    dispatch order, MP is requested by name as the baseline.
    let engine = Engine::with_default_solvers();
    let opts = SolveOptions::default();
    let bound: Cost = 2_000_000; // <= 2 MB of delta replay per rebuild
    let bmr = ProblemKind::Bmr {
        retrieval_budget: bound,
    };
    let dp = engine
        .solve(&g, bmr, &opts)
        .expect("BMR is always feasible");
    let mp = engine
        .solve_with("MP", &g, bmr, &opts)
        .expect("BMR is always feasible");
    println!(
        "\nBMR, rebuild bound {:.1} MB: {} stores {:.1} MB ({} checkpoints); MP stores {:.1} MB ({} checkpoints)",
        mb(bound),
        dp.meta.solver,
        mb(dp.costs.storage),
        dp.plan.materialized_count(),
        mb(mp.costs.storage),
        mp.plan.materialized_count(),
    );

    // 3. Naive periodic checkpointing at the same worst-case rebuild cost.
    for k in [7usize, 30, 90] {
        let ck = checkpoint_plan(&g, k);
        let c = ck.costs(&g);
        println!(
            "checkpoint every {k:>2} days: storage {:>8.1} MB, worst rebuild {:>6.2} MB, mean {:>6.3} MB",
            mb(c.storage),
            mb(c.max_retrieval),
            mb(c.total_retrieval) / g.n() as f64
        );
    }
    println!(
        "\nTakeaway: cost-aware checkpoint placement (DP-BMR) undercuts periodic\n\
         checkpointing because migrations make deltas heterogeneous — exactly\n\
         the effect the paper's version graphs model."
    );
}
