//! Quickstart: the Figure-1 version graph from the paper, solved end to end
//! through the unified solver engine.
//!
//! Five dataset versions with annotated `<storage, retrieval>` costs. We
//! compare the two trivial extremes (store everything / minimum storage)
//! against the paper's algorithms at an intermediate budget — reproducing
//! the (i)–(iv) storage options of Figure 1 — then let the engine's
//! portfolio mode pick the best solver for each of the four problems.
//!
//! Run with: `cargo run --example quickstart`

use dataset_versioning::prelude::*;

fn main() {
    // Figure 1(i): the input version graph.
    let mut g = VersionGraph::new();
    let v1 = g.add_labelled_node(10_000, "v1");
    let v2 = g.add_labelled_node(10_100, "v2");
    let v3 = g.add_labelled_node(9_700, "v3");
    let v4 = g.add_labelled_node(9_800, "v4");
    let v5 = g.add_labelled_node(10_120, "v5");
    // <storage, retrieval> annotations from the figure.
    g.add_bidirectional_edge(v1, v2, 200, 200);
    g.add_bidirectional_edge(v1, v3, 1_000, 3_000);
    g.add_bidirectional_edge(v2, v4, 50, 400);
    g.add_bidirectional_edge(v2, v5, 800, 2_500);
    g.add_bidirectional_edge(v3, v5, 200, 550);

    println!("version graph: {} versions, {} deltas", g.n(), g.m());

    // Figure 1(ii): store every version.
    let all = StoragePlan::materialize_all(&g);
    let c = all.costs(&g);
    println!(
        "(ii) materialize all : storage {:>6}, total retrieval {:>6}, max {:>5}",
        c.storage, c.total_retrieval, c.max_retrieval
    );

    // Figure 1(iii): the storage-minimal plan (Problem 1).
    let minimal = min_storage_plan(&g);
    let c = minimal.costs(&g);
    println!(
        "(iii) min storage    : storage {:>6}, total retrieval {:>6}, max {:>5}",
        c.storage, c.total_retrieval, c.max_retrieval
    );

    // Figure 1(iv): materializing v3 as well shortens v3 and v5. One engine
    // serves every algorithm; pick them by name.
    let engine = Engine::with_default_solvers();
    let opts = SolveOptions::default();
    let smin = min_storage_value(&g);
    let budget = smin + g.node_storage(v3);
    let msr = ProblemKind::Msr {
        storage_budget: budget,
    };
    for name in ["LMG", "LMG-All"] {
        let sol = engine
            .solve_with(name, &g, msr, &opts)
            .expect("budget is above minimum storage");
        println!(
            "(iv) {name:<8} S<={budget}: storage {:>6}, total retrieval {:>6}, max {:>5}, {} materialized, {} moves",
            sol.costs.storage,
            sol.costs.total_retrieval,
            sol.costs.max_retrieval,
            sol.plan.materialized_count(),
            sol.meta.iterations
        );
    }

    // DP-MSR gives the whole storage/retrieval frontier in one run.
    let budgets: Vec<Cost> = (0..6).map(|i| smin + i * 5_000).collect();
    let sweep =
        dp_msr_sweep(&g, v1, &budgets, &DpMsrConfig::default()).expect("graph is connected");
    println!("\nDP-MSR frontier (storage budget -> achieved storage/retrieval):");
    for (b, costs) in budgets.iter().zip(sweep) {
        match costs {
            Some(c) => println!(
                "  S <= {b:>6} : storage {:>6}, total retrieval {:>6}",
                c.storage, c.total_retrieval
            ),
            None => println!("  S <= {b:>6} : infeasible"),
        }
    }

    // The portfolio mode runs every applicable solver — including the
    // Appendix-D ILP on this tiny graph — and returns the best feasible
    // plan for each of the paper's four problems.
    println!("\nengine portfolio across all four problems:");
    let rmax = g.max_edge_retrieval();
    for problem in [
        msr,
        ProblemKind::Mmr {
            storage_budget: budget,
        },
        ProblemKind::Bsr {
            retrieval_budget: rmax * 2,
        },
        ProblemKind::Bmr {
            retrieval_budget: rmax,
        },
    ] {
        match engine.portfolio(&g, problem, &opts) {
            Ok(p) => {
                let feasible = p.attempts.iter().filter(|a| a.outcome.is_ok()).count();
                println!(
                    "  {:<3} budget {:>6} -> {:>8} wins with objective {:>6} ({feasible}/{} solvers feasible{})",
                    problem.name(),
                    problem.budget(),
                    p.best.meta.solver,
                    p.best.objective(problem),
                    p.attempts.len(),
                    if p.best.meta.proven_optimal {
                        ", proven optimal"
                    } else {
                        ""
                    },
                );
            }
            Err(e) => println!("  {:<3} -> {e}", problem.name()),
        }
    }
}
