//! Deep-learning pipeline scenario from the paper's introduction:
//! "in Deep Learning pipelines, multiple versions are generated from the
//! same original data for training and insight generation."
//!
//! We simulate a training-data lineage: one base corpus, many derived
//! variants (augmentations, filtered subsets, re-labelings) organized in a
//! shallow, branchy version graph. Retrieval latency matters because
//! training jobs check out versions constantly, so we solve MSR at several
//! storage budgets and show the frontier, then pick checkpoints with BMR so
//! that *no* checkout is ever slower than a bound.
//!
//! Run with: `cargo run --example ml_pipeline`

use dataset_versioning::prelude::*;
use dsv_delta::chunks::ChunkSketch;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Build a lineage: base dataset -> stages of derived variants.
fn build_lineage(seed: u64) -> VersionGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut next_chunk = 0u64;
    let fresh = |rng: &mut SmallRng, n: &mut u64, size: u32| {
        let id = *n;
        *n += 1;
        (id, size.max(1) + rng.gen_range(0..size.max(2)))
    };

    // Base corpus: ~200 MB of 1 MB shards.
    let mut base = ChunkSketch::new();
    for _ in 0..200 {
        let (id, sz) = fresh(&mut rng, &mut next_chunk, 1 << 20);
        base.insert(id, sz);
    }

    let mut sketches = vec![base.clone()];
    let mut parents: Vec<Option<usize>> = vec![None];
    // Three stages of derivation, each variant mutating 2-10% of shards.
    let mut frontier = vec![0usize];
    for _stage in 0..3 {
        let mut next_frontier = Vec::new();
        for &p in &frontier {
            let fanout = rng.gen_range(2..5);
            for _ in 0..fanout {
                let mut s = sketches[p].clone();
                let mutations = (s.chunk_count() as f64 * rng.gen_range(0.02..0.10)) as usize;
                for _ in 0..mutations.max(1) {
                    let ids = s.ids();
                    let victim = ids[rng.gen_range(0..ids.len())];
                    s.remove(victim);
                    let (id, sz) = fresh(&mut rng, &mut next_chunk, 1 << 20);
                    s.insert(id, sz);
                }
                sketches.push(s);
                parents.push(Some(p));
                next_frontier.push(sketches.len() - 1);
            }
        }
        frontier = next_frontier;
    }

    // Version graph with bidirectional parent-child deltas.
    let mut g = VersionGraph::new();
    for (i, s) in sketches.iter().enumerate() {
        g.add_labelled_node(s.byte_size(), format!("v{i}"));
    }
    for (i, p) in parents.iter().enumerate() {
        if let Some(p) = *p {
            let fwd = sketches[p].delta_to(&sketches[i]);
            let bwd = sketches[i].delta_to(&sketches[p]);
            g.add_edge(
                NodeId::new(p),
                NodeId::new(i),
                fwd.storage_cost(),
                fwd.retrieval_cost(),
            );
            g.add_edge(
                NodeId::new(i),
                NodeId::new(p),
                bwd.storage_cost(),
                bwd.retrieval_cost(),
            );
        }
    }
    g
}

fn mib(x: u64) -> f64 {
    x as f64 / (1 << 20) as f64
}

fn main() {
    let g = build_lineage(42);
    println!(
        "training-data lineage: {} versions, {} deltas, {:.0} MiB if fully materialized",
        g.n(),
        g.m(),
        mib(g.total_node_storage())
    );

    let smin = min_storage_value(&g);
    println!("minimum storage: {:.0} MiB\n", mib(smin));

    // MSR frontier: how much faster do checkouts get per GB invested?
    let budgets: Vec<Cost> = (0..6).map(|i| smin + smin * i / 5).collect();
    let sweep = dp_msr_sweep(&g, NodeId(0), &budgets, &DpMsrConfig::default())
        .expect("lineage is connected");
    println!("DP-MSR storage/retrieval frontier:");
    println!(
        "  {:>12} {:>14} {:>16}",
        "budget(MiB)", "storage(MiB)", "avg checkout(MiB)"
    );
    for (b, c) in budgets.iter().zip(&sweep) {
        match c {
            Some(c) => println!(
                "  {:>12.0} {:>14.0} {:>16.1}",
                mib(*b),
                mib(c.storage),
                mib(c.total_retrieval) / g.n() as f64
            ),
            None => println!("  {:>12.0} {:>14} {:>16}", mib(*b), "-", "infeasible"),
        }
    }

    // BMR: bound the worst checkout (e.g. 64 MiB of delta replay). The
    // engine's portfolio runs DP-BMR and MP and keeps the cheaper plan.
    let engine = Engine::with_default_solvers();
    let bound: Cost = 64 << 20;
    let bmr = ProblemKind::Bmr {
        retrieval_budget: bound,
    };
    let portfolio = engine
        .portfolio(&g, bmr, &SolveOptions::default())
        .expect("BMR is always feasible");
    let best = &portfolio.best;
    println!(
        "\nBMR with worst-checkout bound {:.0} MiB: {} wins — storage {:.0} MiB, {} of {} versions materialized (max retrieval {:.1} MiB)",
        mib(bound),
        best.meta.solver,
        mib(best.costs.storage),
        best.plan.materialized_count(),
        g.n(),
        mib(best.costs.max_retrieval)
    );
    for attempt in &portfolio.attempts {
        if let Some(costs) = attempt.outcome.ok() {
            println!(
                "  {:>8}: storage {:>6.0} MiB in {:.1} ms",
                attempt.solver,
                mib(costs.storage),
                attempt.wall_time.as_secs_f64() * 1e3
            );
        }
    }
}
