//! # dataset-versioning
//!
//! A from-scratch Rust implementation of Guo, Li, Sukprasert, Khuller,
//! Deshpande & Mukherjee, *"To Store or Not to Store: a graph theoretical
//! approach for Dataset Versioning"* (IPPS 2024, arXiv:2402.11741).
//!
//! Given many versions of a dataset and the deltas between them, the
//! library decides which versions to **materialize** and which to rebuild
//! from **deltas**, optimizing the storage/retrieval trade-off:
//!
//! * **MSR** — minimize total retrieval cost under a storage budget;
//! * **MMR** — minimize the worst retrieval cost under a storage budget;
//! * **BSR/BMR** — minimize storage under retrieval budgets.
//!
//! All four problems are served by one entry point: the solver
//! [`core::engine::Engine`]. It dispatches a
//! [`ProblemKind`](core::problem::ProblemKind) to registered solvers (LMG,
//! LMG-All, Modified Prim's, DP-MSR, DP-BMR, DP-BTW, ILP, brute force),
//! validates and budget-checks every plan before returning it, and offers a
//! portfolio mode that runs every applicable solver and keeps the best
//! feasible answer. Racing/portfolio dispatch fans out across a
//! work-stealing thread pool (cooperatively preemptible via
//! [`CancelToken`](core::cancel::CancelToken), deterministic: byte-identical
//! results to sequential execution), and the batched
//! [`solve_sweep`](core::engine::Engine::solve_sweep) answers a whole MSR
//! budget sweep from a single DP run.
//!
//! ## Planning vs execution
//!
//! Planning is the middle of the pipeline, not the end. A solver
//! [`Solution`](core::engine::Solution) is a *decision*; the
//! [`PlanExecutor`](core::executor::PlanExecutor) carries it out against a
//! content-addressed [`Store`](delta::store::Store):
//!
//! * **backends** — [`MemStore`](delta::MemStore) (in-memory) and
//!   [`PackStore`](delta::PackStore) (persistent: append-only pack with a
//!   fixed-width mmap-friendly index, hash-keyed loose files for large
//!   objects, reference-counted compacting GC);
//! * **ingest** — materialized versions become payload chunks, stored
//!   deltas become applyable encoded deltas; identical objects across
//!   plans are deduplicated by content address;
//! * **execute** — every version is reconstructed by walking the plan's
//!   retrieval forest, hash-verified against the source, and *measured*:
//!   storage/retrieval costs re-priced from the stored bytes must equal
//!   the plan's predictions exactly (asserted in tests and gated in CI by
//!   `repro --experiment store`).
//!
//! [`solve_and_execute`](core::engine::Engine::solve_and_execute) runs the
//! whole solve → store → verify chain in one call.
//!
//! Serving reads is its own layer: [`Checkout`](core::checkout::Checkout)
//! is a `&self`-shareable batched reader that plans the union of a
//! request batch's retrieval chains, hydrates shared prefixes once,
//! reconstructs independent subtrees in parallel over borrowed
//! (`Store::get_ref`) bytes, and keeps hot payloads in a depth-aware
//! LRU [`CheckoutCache`](core::checkout::CheckoutCache) — gated in CI by
//! `repro --experiment checkout --assert-speedup`.
//!
//! ## Serving a shared engine
//!
//! [`VersioningService`](core::service::VersioningService) turns the
//! engine + store into a multi-client service: `Solve`, `Checkout`, and
//! `Commit` requests flow through a **bounded** queue onto a
//! thread-per-core worker pool. Over capacity, requests are shed
//! immediately with a typed `Overloaded { retry_after_hint }` instead of
//! queueing forever; every admitted request carries a deadline that
//! becomes a chained [`CancelToken`](core::cancel::CancelToken) polled
//! inside the DPs, so expired work is preempted and surfaces as
//! `Cancelled` — never as a late result. Under deadline pressure a
//! `Solve` walks a degradation ladder (full portfolio → LMG-All
//! heuristic → cached plan from a previously-seen graph fingerprint),
//! each reply labeled with the tier that produced it; `Checkout`s go
//! through the self-healing batched reader, so injected store faults
//! heal instead of failing requests. Gated in CI by `repro --experiment
//! service --assert-throughput`.
//!
//! ## Online planning & live migration
//!
//! A commit stream does not re-solve: the
//! [`OnlinePlanner`](core::online::OnlinePlanner) absorbs graph mutations
//! (`add_version` / `add_edge` / `retire_version`) into a live LMG-All
//! plan by re-scoring only the dirtied candidates through the incremental
//! greedy machinery, with a declared regret bound
//! ([`ONLINE_REGRET_BOUND`](core::online::ONLINE_REGRET_BOUND)) against
//! the from-scratch solve (`DSV_ONLINE_MODE=scratch` is the
//! byte-identical oracle). The matching store-side primitive is
//! [`PlanExecutor::migrate`](core::executor::PlanExecutor::migrate):
//! diff two plans, write only the changed objects, retain-before-release
//! so no live version is ever unreadable. The service's
//! `Absorb` request chains both — mutate → absorb → migrate — per
//! commit, gated in CI by `repro --experiment online --assert-speedup`.
//!
//! ## Scale: sharded hierarchical solving
//!
//! Past a few tens of thousands of versions, one monolithic solve stops
//! scaling. [`ShardedSolver`](core::engine::sharded::ShardedSolver) —
//! registered first in the default engine — partitions the graph into
//! bounded-size shards ([`vgraph::partition`]: connected components, then
//! treewidth-separator cuts from [`treewidth::separator`]), solves the
//! shards in parallel under a deterministic budget split, and stitches the
//! local plans through a coarsened cross-shard solve. Results are
//! byte-identical at any thread count, exactly budget-safe, and gated
//! within a declared regret bound
//! ([`SHARD_REGRET_BOUND`](core::engine::sharded::SHARD_REGRET_BOUND)) of
//! whole-graph LMG-All by `repro --experiment shard --assert-speedup` in
//! CI. Small graphs are refused deterministically, so everyday dispatch
//! is unchanged; `DSV_SHARD_MODE=off` disables the path entirely.
//!
//! ## Quickstart
//!
//! ```
//! use dataset_versioning::prelude::*;
//!
//! // Build a version graph: nodes carry materialization costs, edges carry
//! // (storage, retrieval) delta costs.
//! let mut g = VersionGraph::new();
//! let v1 = g.add_node(10_000);
//! let v2 = g.add_node(10_100);
//! g.add_bidirectional_edge(v1, v2, 200, 200);
//!
//! // Budget: 1.2x the storage-minimal plan.
//! let smin = min_storage_value(&g);
//! let problem = ProblemKind::Msr { storage_budget: smin * 12 / 10 };
//!
//! // One engine serves every problem kind.
//! let engine = Engine::with_default_solvers();
//! let solution = engine
//!     .solve(&g, problem, &SolveOptions::default())
//!     .expect("feasible");
//! assert!(solution.costs.storage <= smin * 12 / 10);
//! println!("solved by {}", solution.meta.solver);
//!
//! // Portfolio mode: run all applicable solvers, keep the best plan.
//! let best = engine
//!     .portfolio(&g, problem, &SolveOptions::default())
//!     .expect("feasible");
//! assert!(best.best.costs.total_retrieval <= solution.costs.total_retrieval);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`dsv_vgraph`] | graph container + arborescences, Dijkstra, MST, generators |
//! | [`dsv_delta`] | Myers diff, chunk sketches, synthetic corpora (Table 4), and the content-addressed [`store`](delta::store) (Mem/Pack backends, codecs, GC) |
//! | [`dsv_treewidth`] | tree decompositions, nice decompositions |
//! | [`dsv_core`] | the [`Engine`](core::engine::Engine) + the algorithms under it: LMG, LMG-All, MP, DP-BMR, DP-MSR, FPTAS, DP-BTW, reductions, ILP — and the [`executor`](core::executor) that materializes plans against a store |
//! | [`dsv_solver`] | simplex + branch & bound (the Gurobi stand-in) |
//!
//! The free algorithm functions ([`prelude::lmg_all`],
//! [`prelude::dp_msr_on_graph`], …) remain exported for direct use and for
//! benchmarking individual algorithms; the engine is a thin validated
//! dispatch layer over exactly those functions, as the parity tests in
//! `tests/engine.rs` verify.

#![warn(missing_docs)]

pub use dsv_core as core;
pub use dsv_delta as delta;
pub use dsv_solver as solver;
pub use dsv_treewidth as treewidth;
pub use dsv_vgraph as vgraph;

/// Everything a typical user needs in one import.
pub mod prelude {
    pub use dsv_core::baselines::{
        checkpoint_plan, min_storage_plan, min_storage_value, shortest_path_plan,
    };
    pub use dsv_core::btw::{btw_msr, btw_msr_plan, btw_msr_value, BtwConfig, BtwResult};
    pub use dsv_core::cancel::CancelToken;
    pub use dsv_core::checkout::{
        CacheStats, Checkout, CheckoutCache, CheckoutOutcome, CheckoutStats, RepairStats,
        RepairTicket, ServeOutcome,
    };
    pub use dsv_core::engine::{
        sharded_msr, AttemptOutcome, Engine, ExecuteError, Execution, MsrSweep, Portfolio,
        PortfolioAttempt, ShardConfig, ShardStats, ShardedSolver, SharedWork, Solution, SolveError,
        SolveOptions, Solver, SolverMeta, SHARD_REGRET_BOUND,
    };
    pub use dsv_core::exact::{brute_force, msr_opt};
    pub use dsv_core::executor::{
        ExecError, ExecutionReport, MigrationStats, PlanExecutor, StoredPlan,
    };
    pub use dsv_core::heuristics::{lmg, lmg_all, modified_prims};
    pub use dsv_core::online::{OnlinePlanner, OnlineStats, ONLINE_REGRET_BOUND};
    pub use dsv_core::plan::{Parent, PlanCosts, StoragePlan};
    pub use dsv_core::problem::{Objective, ProblemKind};
    pub use dsv_core::reductions::{bsr_via_msr, mmr_on_graph};
    pub use dsv_core::retry::RetryPolicy;
    pub use dsv_core::service::{
        Mutation, PlanId, Reply, Request, ServeTier, ServiceConfig, ServiceError, ServiceStats,
        Ticket, VersioningService,
    };
    pub use dsv_core::tree::{
        dp_bmr_on_graph, dp_msr_on_graph, dp_msr_sweep, extract_tree, DpMsrConfig,
    };
    pub use dsv_delta::corpus::{corpus, corpus_with_content, CorpusName};
    pub use dsv_delta::store::{
        CorpusContent, CrashPoint, Durability, FaultOp, FaultPlan, FaultStats, FaultStore,
        MemStore, ObjectHasher, ObjectId, ObjectKind, PackOptions, PackStore, Store, StoreError,
        VersionSource,
    };
    pub use dsv_delta::transforms::{erdos_renyi_from_sketches, random_compression};
    pub use dsv_treewidth::split_component;
    pub use dsv_vgraph::{
        partition_graph, Components, Cost, EdgeId, NodeId, Partition, PartitionError, VersionGraph,
    };
}
