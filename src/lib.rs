//! # dataset-versioning
//!
//! A from-scratch Rust implementation of Guo, Li, Sukprasert, Khuller,
//! Deshpande & Mukherjee, *"To Store or Not to Store: a graph theoretical
//! approach for Dataset Versioning"* (IPPS 2024, arXiv:2402.11741).
//!
//! Given many versions of a dataset and the deltas between them, the
//! library decides which versions to **materialize** and which to rebuild
//! from **deltas**, optimizing the storage/retrieval trade-off:
//!
//! * **MSR** — minimize total retrieval cost under a storage budget;
//! * **MMR** — minimize the worst retrieval cost under a storage budget;
//! * **BSR/BMR** — minimize storage under retrieval budgets.
//!
//! ## Quickstart
//!
//! ```
//! use dataset_versioning::prelude::*;
//!
//! // Build a version graph: nodes carry materialization costs, edges carry
//! // (storage, retrieval) delta costs.
//! let mut g = VersionGraph::new();
//! let v1 = g.add_node(10_000);
//! let v2 = g.add_node(10_100);
//! g.add_bidirectional_edge(v1, v2, 200, 200);
//!
//! // Budget: 1.2x the storage-minimal plan.
//! let smin = min_storage_value(&g);
//! let plan = lmg_all(&g, smin * 12 / 10).expect("feasible");
//! let costs = plan.costs(&g);
//! assert!(costs.storage <= smin * 12 / 10);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`dsv_vgraph`] | graph container + arborescences, Dijkstra, MST, generators |
//! | [`dsv_delta`] | Myers diff, chunk sketches, synthetic corpora (Table 4) |
//! | [`dsv_treewidth`] | tree decompositions, nice decompositions |
//! | [`dsv_core`] | LMG, LMG-All, MP, DP-BMR, DP-MSR, FPTAS, reductions, ILP |
//! | [`dsv_solver`] | simplex + branch & bound (the Gurobi stand-in) |

#![warn(missing_docs)]

pub use dsv_core as core;
pub use dsv_delta as delta;
pub use dsv_solver as solver;
pub use dsv_treewidth as treewidth;
pub use dsv_vgraph as vgraph;

/// Everything a typical user needs in one import.
pub mod prelude {
    pub use dsv_core::baselines::{
        checkpoint_plan, min_storage_plan, min_storage_value, shortest_path_plan,
    };
    pub use dsv_core::btw::{btw_msr, btw_msr_value, BtwConfig};
    pub use dsv_core::exact::{brute_force, msr_opt};
    pub use dsv_core::heuristics::{lmg, lmg_all, modified_prims};
    pub use dsv_core::plan::{Parent, PlanCosts, StoragePlan};
    pub use dsv_core::problem::{Objective, ProblemKind};
    pub use dsv_core::reductions::{bsr_via_msr, mmr_on_graph};
    pub use dsv_core::tree::{
        dp_bmr_on_graph, dp_msr_on_graph, dp_msr_sweep, extract_tree, DpMsrConfig,
    };
    pub use dsv_delta::corpus::{corpus, CorpusName};
    pub use dsv_delta::transforms::{erdos_renyi_from_sketches, random_compression};
    pub use dsv_vgraph::{Cost, EdgeId, NodeId, VersionGraph};
}
